// Runs every file in tests/hin/corrupt/ through the loaders and asserts the
// expected typed status. The corpus is the regression net for the hardened
// I/O boundary: each file is a distinct way real-world input goes wrong.
// This binary carries the `sanitize` ctest label so the corpus also runs
// under TMARK_SANITIZE=address builds.

#include <string>

#include <gtest/gtest.h>

#include "tmark/common/status.h"
#include "tmark/core/model_io.h"
#include "tmark/hin/hin_delta.h"
#include "tmark/hin/hin_io.h"

#ifndef TMARK_TEST_DATA_DIR
#error "TMARK_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace tmark {
namespace {

std::string CorpusPath(const std::string& file) {
  return std::string(TMARK_TEST_DATA_DIR) + "/hin/corrupt/" + file;
}

struct HinCase {
  const char* file;
  StatusCode expected;
};

class CorruptHinCorpusTest : public ::testing::TestWithParam<HinCase> {};

TEST_P(CorruptHinCorpusTest, YieldsExpectedStatus) {
  const HinCase& c = GetParam();
  const Result<hin::Hin> result = hin::LoadHinFromFile(CorpusPath(c.file));
  ASSERT_FALSE(result.ok()) << c.file;
  EXPECT_EQ(result.status().code(), c.expected)
      << c.file << ": " << result.status().ToString();
  // Every corpus error carries the path so the user can locate the file.
  EXPECT_NE(result.status().message().find(c.file), std::string::npos)
      << result.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorruptHinCorpusTest,
    ::testing::Values(
        HinCase{"truncated_header.hin", StatusCode::kParseError},
        HinCase{"out_of_range_edge.hin", StatusCode::kParseError},
        HinCase{"overflowing_index.hin", StatusCode::kParseError},
        HinCase{"nan_weight.hin", StatusCode::kParseError},
        HinCase{"bad_feat_token.hin", StatusCode::kParseError},
        HinCase{"duplicate_edge.hin", StatusCode::kParseError},
        HinCase{"negative_weight.hin", StatusCode::kParseError},
        HinCase{"hostile_dimensions.hin", StatusCode::kParseError}),
    [](const ::testing::TestParamInfo<HinCase>& info) {
      std::string name = info.param.file;
      for (char& ch : name) {
        if (ch == '.' || ch == '/') ch = '_';
      }
      return name;
    });

struct DeltaCase {
  const char* file;
  StatusCode expected;
};

class CorruptDeltaCorpusTest : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(CorruptDeltaCorpusTest, YieldsExpectedStatus) {
  const DeltaCase& c = GetParam();
  const Result<hin::HinDelta> result =
      hin::LoadHinDeltaFromFile(CorpusPath(c.file));
  ASSERT_FALSE(result.ok()) << c.file;
  EXPECT_EQ(result.status().code(), c.expected)
      << c.file << ": " << result.status().ToString();
  EXPECT_NE(result.status().message().find(c.file), std::string::npos)
      << result.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorruptDeltaCorpusTest,
    ::testing::Values(
        DeltaCase{"delta_bad_header.delta", StatusCode::kParseError},
        DeltaCase{"delta_unknown_directive.delta", StatusCode::kParseError},
        DeltaCase{"delta_nan_weight.delta", StatusCode::kParseError},
        DeltaCase{"delta_negative_weight.delta", StatusCode::kParseError},
        DeltaCase{"delta_duplicate_op.delta", StatusCode::kParseError},
        DeltaCase{"delta_overflowing_index.delta",
                  StatusCode::kParseError}),
    [](const ::testing::TestParamInfo<DeltaCase>& info) {
      std::string name = info.param.file;
      for (char& ch : name) {
        if (ch == '.' || ch == '/') ch = '_';
      }
      return name;
    });

struct ModelCase {
  const char* file;
  StatusCode expected;
};

class CorruptModelCorpusTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(CorruptModelCorpusTest, YieldsExpectedStatus) {
  const ModelCase& c = GetParam();
  const Result<core::TMarkClassifier> result =
      core::LoadTMarkModelFromFile(CorpusPath(c.file));
  ASSERT_FALSE(result.ok()) << c.file;
  EXPECT_EQ(result.status().code(), c.expected)
      << c.file << ": " << result.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorruptModelCorpusTest,
    ::testing::Values(ModelCase{"model_conf_before_shape.tmm",
                                StatusCode::kFailedPrecondition},
                      ModelCase{"model_bad_alpha.tmm",
                                StatusCode::kParseError}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      std::string name = info.param.file;
      for (char& ch : name) {
        if (ch == '.' || ch == '/') ch = '_';
      }
      return name;
    });

TEST(CorruptCorpusTest, ParseErrorsNameTheOffendingLine) {
  const Result<hin::Hin> result =
      hin::LoadHinFromFile(CorpusPath("nan_weight.hin"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 6"), std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace tmark
