#include "tmark/hin/meta_path.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/hin/hin_builder.h"

namespace tmark::hin {
namespace {

Hin PathHin() {
  // Relation 0: 0 <- 1 (i.e. edge stored at A[0,1]); relation 1: 1 <- 2.
  HinBuilder b(3, 1);
  b.AddClass("A");
  const std::size_t r0 = b.AddRelation("r0");
  const std::size_t r1 = b.AddRelation("r1");
  b.AddDirectedEdge(r0, 1, 0);  // src 1 -> dst 0: stored (0, 1)
  b.AddDirectedEdge(r1, 2, 1);  // src 2 -> dst 1: stored (1, 2)
  return std::move(b).Build();
}

TEST(MetaPathTest, ComposeTwoRelations) {
  const Hin hin = PathHin();
  // (r0 * r1)[0, 2] = sum_j r0[0, j] * r1[j, 2] = r0[0,1] * r1[1,2] = 1:
  // a length-2 path from source node 2 to destination node 0.
  const la::SparseMatrix composed = ComposeMetaPath(hin, {0, 1});
  EXPECT_DOUBLE_EQ(composed.At(0, 2), 1.0);
  EXPECT_EQ(composed.NumNonZeros(), 1u);
}

TEST(MetaPathTest, SingleRelationIsIdentityCompose) {
  const Hin hin = PathHin();
  const la::SparseMatrix m = ComposeMetaPath(hin, {0});
  EXPECT_DOUBLE_EQ(m.ToDense().MaxAbsDiff(hin.relation(0).ToDense()), 0.0);
}

TEST(MetaPathTest, EmptyPathThrows) {
  const Hin hin = PathHin();
  EXPECT_THROW(ComposeMetaPath(hin, {}), CheckError);
}

TEST(MetaPathTest, ComposeCountsMultiplePaths) {
  HinBuilder b(4, 1);
  b.AddClass("A");
  const std::size_t r = b.AddRelation("r");
  // Two paths of length 2 from node 3 to node 0: via 1 and via 2.
  b.AddDirectedEdge(r, 1, 0);
  b.AddDirectedEdge(r, 2, 0);
  b.AddDirectedEdge(r, 3, 1);
  b.AddDirectedEdge(r, 3, 2);
  const Hin hin = std::move(b).Build();
  const la::SparseMatrix m2 = ComposeMetaPath(hin, {0, 0});
  EXPECT_DOUBLE_EQ(m2.At(0, 3), 2.0);
}

TEST(MetaPathTest, BinarizeLinks) {
  const la::SparseMatrix m =
      la::SparseMatrix::FromTriplets(2, 2, {{0, 1, 2.0}, {1, 0, 0.5}});
  const la::SparseMatrix bin = BinarizeLinks(m);
  EXPECT_DOUBLE_EQ(bin.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(bin.At(1, 0), 1.0);
}

TEST(MetaPathTest, AllLength2RespectsCaps) {
  const Hin hin = PathHin();
  const auto all = AllLength2MetaPaths(hin, /*min_links=*/1, /*max_paths=*/2);
  EXPECT_LE(all.size(), 2u);
  const auto none = AllLength2MetaPaths(hin, /*min_links=*/100, 10);
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace tmark::hin
