// Tests of the CollectiveClassifier prediction helpers through a stub
// implementation with hand-set confidences.

#include <gtest/gtest.h>

#include "tmark/hin/classifier.h"

namespace tmark::hin {
namespace {

class StubClassifier : public CollectiveClassifier {
 public:
  explicit StubClassifier(la::DenseMatrix conf) : conf_(std::move(conf)) {}
  void Fit(const Hin&, const std::vector<std::size_t>&) override {}
  const la::DenseMatrix& Confidences() const override { return conf_; }
  std::string Name() const override { return "stub"; }

 private:
  la::DenseMatrix conf_;
};

TEST(ClassifierInterfaceTest, SingleLabelIsArgMax) {
  StubClassifier stub(la::DenseMatrix::FromRows({{0.1, 0.9},
                                                 {0.8, 0.2},
                                                 {0.5, 0.5}}));
  const auto pred = stub.PredictSingleLabel();
  EXPECT_EQ(pred, (std::vector<std::size_t>{1, 0, 0}));  // ties -> first
}

TEST(ClassifierInterfaceTest, MultiLabelRelativeThreshold) {
  StubClassifier stub(la::DenseMatrix::FromRows({{0.6, 0.35, 0.05}}));
  // Threshold 0.5: cutoff = 0.3 -> classes 0 and 1.
  const auto half = stub.PredictMultiLabel(0.5);
  EXPECT_EQ(half[0], (std::vector<std::size_t>{0, 1}));
  // Threshold 0.9: cutoff = 0.54 -> only the arg-max class.
  const auto strict = stub.PredictMultiLabel(0.9);
  EXPECT_EQ(strict[0], (std::vector<std::size_t>{0}));
  // Threshold 0: everything positive qualifies.
  const auto loose = stub.PredictMultiLabel(0.0);
  EXPECT_EQ(loose[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ClassifierInterfaceTest, MultiLabelZeroRowFallsBackToArgMax) {
  StubClassifier stub(la::DenseMatrix::FromRows({{0.0, 0.0}}));
  const auto sets = stub.PredictMultiLabel(0.5);
  // No positive confidence anywhere: the arg-max class is still returned.
  EXPECT_EQ(sets[0], (std::vector<std::size_t>{0}));
}

TEST(ClassifierInterfaceTest, MultiLabelExcludesZeroConfidences) {
  StubClassifier stub(la::DenseMatrix::FromRows({{0.7, 0.0, 0.3}}));
  const auto sets = stub.PredictMultiLabel(0.0);
  // Class 1 has exactly zero confidence -> excluded even at threshold 0.
  EXPECT_EQ(sets[0], (std::vector<std::size_t>{0, 2}));
}

}  // namespace
}  // namespace tmark::hin
