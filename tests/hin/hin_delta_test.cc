#include "tmark/hin/hin_delta.h"

#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tmark/common/status.h"
#include "tmark/hin/hin.h"
#include "tmark/hin/hin_builder.h"
#include "tmark/hin/hin_io.h"

namespace tmark::hin {
namespace {

// 4 nodes, 2 relations, 2 classes, 3 feature dims — small enough that every
// mutation is checkable by eye.
Hin MakeTestHin() {
  HinBuilder b(4, 3);
  b.AddRelation("r0");
  b.AddRelation("r1");
  b.AddClass("A");
  b.AddClass("B");
  b.AddDirectedEdge(0, /*src=*/0, /*dst=*/1, 1.0);
  b.AddDirectedEdge(0, /*src=*/2, /*dst=*/1, 2.0);
  b.AddDirectedEdge(1, /*src=*/1, /*dst=*/2, 0.5);
  b.SetLabel(0, 0);
  b.SetLabel(3, 1);
  b.AddFeature(0, 0, 1.0);
  b.AddFeature(1, 1, 2.0);
  b.AddFeature(1, 2, 3.0);
  return std::move(b).Build();
}

std::string Serialized(const Hin& hin) {
  std::stringstream ss;
  SaveHin(hin, ss);
  return ss.str();
}

TEST(HinDeltaTest, AppliedDeltaMatchesFromScratchBuild) {
  Hin hin = MakeTestHin();
  HinDelta delta;
  delta.AddEdge(/*relation=*/1, /*src=*/3, /*dst=*/0, 4.0);
  delta.RemoveEdge(/*relation=*/0, /*src=*/0, /*dst=*/1);
  delta.ReweightEdge(/*relation=*/0, /*src=*/2, /*dst=*/1, 7.5);
  delta.UpdateFeatureRow(1, {{2, 1.5}, {0, 0.5}, {1, 0.0}});
  delta.AddLabel(2, 0);
  ASSERT_TRUE(hin.ApplyDelta(delta).ok());

  HinBuilder b(4, 3);
  b.AddRelation("r0");
  b.AddRelation("r1");
  b.AddClass("A");
  b.AddClass("B");
  b.AddDirectedEdge(0, 2, 1, 7.5);
  b.AddDirectedEdge(1, 1, 2, 0.5);
  b.AddDirectedEdge(1, 3, 0, 4.0);
  b.SetLabel(0, 0);
  b.SetLabel(2, 0);
  b.SetLabel(3, 1);
  b.AddFeature(0, 0, 1.0);
  b.AddFeature(1, 0, 0.5);  // explicit zero at dim 1 dropped
  b.AddFeature(1, 2, 1.5);
  const Hin expected = std::move(b).Build();

  EXPECT_EQ(Serialized(hin), Serialized(expected));
}

TEST(HinDeltaTest, LabelAddsKeepSetsSorted) {
  Hin hin = MakeTestHin();
  HinDelta delta;
  delta.AddLabel(3, 0);  // node 3 already carries class 1
  ASSERT_TRUE(hin.ApplyDelta(delta).ok());
  EXPECT_EQ(hin.labels(3), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(hin.PrimaryLabel(3), 0u);
}

TEST(HinDeltaTest, ValidationErrorsAreTypedAndLeaveHinUntouched) {
  Hin hin = MakeTestHin();
  const std::string before = Serialized(hin);
  struct Case {
    HinDelta delta;
    StatusCode expected;
  };
  std::vector<Case> cases;
  {
    HinDelta d;  // relation out of range
    d.AddEdge(5, 0, 1, 1.0);
    cases.push_back({std::move(d), StatusCode::kInvalidArgument});
  }
  {
    HinDelta d;  // node out of range
    d.AddEdge(0, 9, 1, 1.0);
    cases.push_back({std::move(d), StatusCode::kInvalidArgument});
  }
  {
    HinDelta d;  // NaN weight
    d.ReweightEdge(0, 0, 1, std::nan(""));
    cases.push_back({std::move(d), StatusCode::kInvalidArgument});
  }
  {
    HinDelta d;  // negative weight
    d.AddEdge(1, 0, 0, -3.0);
    cases.push_back({std::move(d), StatusCode::kInvalidArgument});
  }
  {
    HinDelta d;  // duplicate ops on one edge in one batch
    d.ReweightEdge(0, 0, 1, 2.0);
    d.RemoveEdge(0, 0, 1);
    cases.push_back({std::move(d), StatusCode::kInvalidArgument});
  }
  {
    HinDelta d;  // feature dim out of range
    d.UpdateFeatureRow(0, {{7, 1.0}});
    cases.push_back({std::move(d), StatusCode::kInvalidArgument});
  }
  {
    HinDelta d;  // duplicate dim within one row update
    d.UpdateFeatureRow(0, {{1, 1.0}, {1, 2.0}});
    cases.push_back({std::move(d), StatusCode::kInvalidArgument});
  }
  {
    HinDelta d;  // class out of range
    d.AddLabel(0, 6);
    cases.push_back({std::move(d), StatusCode::kInvalidArgument});
  }
  {
    HinDelta d;  // removing an edge that does not exist
    d.RemoveEdge(1, 0, 3);
    cases.push_back({std::move(d), StatusCode::kNotFound});
  }
  {
    HinDelta d;  // reweighting an edge that does not exist
    d.ReweightEdge(0, 3, 3, 1.0);
    cases.push_back({std::move(d), StatusCode::kNotFound});
  }
  {
    HinDelta d;  // adding an edge that already exists
    d.AddEdge(0, 0, 1, 1.0);
    cases.push_back({std::move(d), StatusCode::kFailedPrecondition});
  }
  {
    HinDelta d;  // adding a label the node already carries
    d.AddLabel(0, 0);
    cases.push_back({std::move(d), StatusCode::kFailedPrecondition});
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Status status = hin.ApplyDelta(cases[i].delta);
    EXPECT_EQ(status.code(), cases[i].expected)
        << "case " << i << ": " << status.ToString();
    EXPECT_EQ(Serialized(hin), before) << "case " << i << " mutated the HIN";
  }
}

TEST(HinDeltaTest, PartiallyInvalidBatchLeavesHinUntouched) {
  Hin hin = MakeTestHin();
  const std::string before = Serialized(hin);
  HinDelta delta;
  delta.AddEdge(1, 3, 0, 4.0);   // valid
  delta.RemoveEdge(1, 0, 3);     // invalid: no such edge
  EXPECT_EQ(hin.ApplyDelta(delta).code(), StatusCode::kNotFound);
  EXPECT_EQ(Serialized(hin), before);
}

TEST(HinDeltaTest, SaveLoadRoundTrip) {
  HinDelta delta;
  delta.AddEdge(1, 3, 0, 0.123456789012345);
  delta.RemoveEdge(0, 0, 1);
  delta.ReweightEdge(0, 2, 1, 7.5);
  delta.UpdateFeatureRow(1, {{0, 0.5}, {2, 1.5}});
  delta.AddLabel(2, 0);
  std::stringstream ss;
  SaveHinDelta(delta, ss);
  const Result<HinDelta> back = LoadHinDelta(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Equality via effect: both deltas produce byte-identical networks.
  Hin a = MakeTestHin();
  Hin b = MakeTestHin();
  ASSERT_TRUE(a.ApplyDelta(delta).ok());
  ASSERT_TRUE(b.ApplyDelta(*back).ok());
  EXPECT_EQ(Serialized(a), Serialized(b));
}

TEST(HinDeltaTest, LoadRejectsMalformedInput) {
  const auto code = [](const std::string& content) {
    std::stringstream ss(content);
    return LoadHinDelta(ss).status().code();
  };
  EXPECT_EQ(code("add_edge 0 1 0 1.0\n"), StatusCode::kParseError);
  EXPECT_EQ(code("# tmark-delta v1\nbogus 1 2\n"), StatusCode::kParseError);
  EXPECT_EQ(code("# tmark-delta v1\nadd_edge 0 1 0 nan\n"),
            StatusCode::kParseError);
  EXPECT_EQ(code("# tmark-delta v1\nadd_edge 0 1 0 -1.0\n"),
            StatusCode::kParseError);
  EXPECT_EQ(code("# tmark-delta v1\nadd_edge 0 1 0 1.0\n"
                 "reweight_edge 0 1 0 2.0\n"),
            StatusCode::kParseError);
  EXPECT_EQ(code("# tmark-delta v1\nfeat 0 1:1.0 1:2.0\n"),
            StatusCode::kParseError);
  EXPECT_EQ(code("# tmark-delta v1\nlabel 0 0\nlabel 0 0\n"),
            StatusCode::kParseError);
  EXPECT_EQ(code("# tmark-delta v1\nremove_edge 0 1\n"),
            StatusCode::kParseError);
}

TEST(HinDeltaTest, LoadErrorsCarryLineNumber) {
  std::stringstream ss("# tmark-delta v1\nadd_edge 0 1 0 1.0\nlabel 0\n");
  const Result<HinDelta> result = LoadHinDelta(ss);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
}

TEST(HinDeltaTest, MissingFileIsNotFound) {
  const Result<HinDelta> result =
      LoadHinDeltaFromFile("/nonexistent/path/x.delta");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tmark::hin
