#include "tmark/hin/hin_builder.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"

namespace tmark::hin {
namespace {

Hin SmallHin() {
  HinBuilder b(3, 4);
  b.AddClass("A");
  b.AddClass("B");
  const std::size_t r0 = b.AddRelation("friend");
  const std::size_t r1 = b.AddRelation("cites");
  b.AddUndirectedEdge(r0, 0, 1);
  b.AddDirectedEdge(r1, 2, 0, 2.0);  // node 2 cites node 0
  b.SetLabel(0, 0);
  b.SetLabel(1, 1);
  b.SetLabel(1, 0);  // multi-label
  b.AddFeature(0, 0, 1.0);
  b.AddFeature(0, 3, 2.0);
  b.AddFeature(2, 1, 1.0);
  return std::move(b).Build();
}

TEST(HinBuilderTest, BasicShape) {
  const Hin hin = SmallHin();
  EXPECT_EQ(hin.num_nodes(), 3u);
  EXPECT_EQ(hin.num_relations(), 2u);
  EXPECT_EQ(hin.num_classes(), 2u);
  EXPECT_EQ(hin.feature_dim(), 4u);
  EXPECT_EQ(hin.relation_name(1), "cites");
  EXPECT_EQ(hin.class_name(0), "A");
}

TEST(HinBuilderTest, UndirectedEdgeIsSymmetric) {
  const Hin hin = SmallHin();
  EXPECT_DOUBLE_EQ(hin.relation(0).At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(hin.relation(0).At(1, 0), 1.0);
}

TEST(HinBuilderTest, DirectedEdgeUsesTensorConvention) {
  // AddDirectedEdge(k, src=2, dst=0): stored at A[dst=0, src=2].
  const Hin hin = SmallHin();
  EXPECT_DOUBLE_EQ(hin.relation(1).At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(hin.relation(1).At(2, 0), 0.0);
}

TEST(HinBuilderTest, SelfLoopAddedOnce) {
  HinBuilder b(2, 1);
  const std::size_t k = b.AddRelation("self");
  b.AddUndirectedEdge(k, 1, 1);
  const Hin hin = std::move(b).Build();
  EXPECT_DOUBLE_EQ(hin.relation(0).At(1, 1), 1.0);
  EXPECT_EQ(hin.relation(0).NumNonZeros(), 1u);
}

TEST(HinBuilderTest, LabelsSortedAndDeduplicated) {
  const Hin hin = SmallHin();
  EXPECT_EQ(hin.labels(1), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_TRUE(hin.HasLabel(1, 0));
  EXPECT_TRUE(hin.HasLabel(1, 1));
  EXPECT_FALSE(hin.HasLabel(0, 1));
  EXPECT_EQ(hin.PrimaryLabel(1), 0u);
  EXPECT_TRUE(hin.labels(2).empty());
  EXPECT_THROW(hin.PrimaryLabel(2), CheckError);
}

TEST(HinBuilderTest, SetLabelDuplicateIgnored) {
  HinBuilder b(1, 1);
  b.AddClass("A");
  b.SetLabel(0, 0);
  b.SetLabel(0, 0);
  const Hin hin = std::move(b).Build();
  EXPECT_EQ(hin.labels(0).size(), 1u);
}

TEST(HinBuilderTest, FeaturesAccumulate) {
  HinBuilder b(1, 2);
  b.AddClass("A");
  b.AddFeature(0, 1, 1.0);
  b.AddFeature(0, 1, 2.0);
  const Hin hin = std::move(b).Build();
  EXPECT_DOUBLE_EQ(hin.features().At(0, 1), 3.0);
}

TEST(HinBuilderTest, BoundsChecks) {
  HinBuilder b(2, 2);
  b.AddClass("A");
  const std::size_t k = b.AddRelation("r");
  EXPECT_THROW(b.AddDirectedEdge(k + 1, 0, 1), CheckError);
  EXPECT_THROW(b.AddDirectedEdge(k, 0, 2), CheckError);
  EXPECT_THROW(b.AddDirectedEdge(k, 0, 1, 0.0), CheckError);
  EXPECT_THROW(b.SetLabel(0, 1), CheckError);
  EXPECT_THROW(b.AddFeature(0, 2, 1.0), CheckError);
}

TEST(HinBuilderTest, ToAdjacencyTensorMatchesRelations) {
  const Hin hin = SmallHin();
  const tensor::SparseTensor3 a = hin.ToAdjacencyTensor();
  EXPECT_EQ(a.num_nodes(), 3u);
  EXPECT_EQ(a.num_relations(), 2u);
  EXPECT_DOUBLE_EQ(a.At(0, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.At(0, 2, 1), 2.0);
}

TEST(HinBuilderTest, AggregatedRelationSums) {
  HinBuilder b(2, 1);
  b.AddClass("A");
  const std::size_t r0 = b.AddRelation("a");
  const std::size_t r1 = b.AddRelation("b");
  b.AddDirectedEdge(r0, 0, 1, 1.5);
  b.AddDirectedEdge(r1, 0, 1, 2.5);
  const Hin hin = std::move(b).Build();
  EXPECT_DOUBLE_EQ(hin.AggregatedRelation().At(1, 0), 4.0);
  EXPECT_EQ(hin.NumLinks(), 2u);
}

TEST(HinBuilderTest, NodesWithLabels) {
  const Hin hin = SmallHin();
  EXPECT_EQ(hin.NodesWithLabels(), (std::vector<std::size_t>{0, 1}));
}

TEST(HinBuilderTest, EdgeCountTracksBufferedEdges) {
  HinBuilder b(3, 1);
  const std::size_t k = b.AddRelation("r");
  EXPECT_EQ(b.EdgeCount(k), 0u);
  b.AddUndirectedEdge(k, 0, 1);
  EXPECT_EQ(b.EdgeCount(k), 2u);  // both directions buffered
}

}  // namespace
}  // namespace tmark::hin
