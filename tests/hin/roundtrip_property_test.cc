// Property test: any HIN the synthetic generator can produce must survive a
// save/load round trip bit-for-bit — across seeds, relation mixes, multi-
// label rates, and directed/undirected topologies.

#include <sstream>

#include <gtest/gtest.h>

#include "tmark/datasets/synthetic_hin.h"
#include "tmark/hin/hin.h"
#include "tmark/hin/hin_io.h"

namespace tmark::hin {
namespace {

datasets::SyntheticHinConfig RandomizedConfig(std::uint64_t seed) {
  // Derive structural knobs deterministically from the seed so each case
  // exercises a different corner of the format.
  datasets::SyntheticHinConfig config;
  config.seed = seed;
  config.num_nodes = 30 + (seed * 17) % 90;
  config.vocab_size = 12 + (seed * 7) % 30;
  config.words_per_node = 5.0 + static_cast<double>(seed % 4);
  config.class_names = {"A", "B"};
  if (seed % 2 == 0) config.class_names.push_back("C");
  config.secondary_label_prob = (seed % 3 == 0) ? 0.4 : 0.0;
  const std::size_t num_relations = 1 + seed % 3;
  for (std::size_t k = 0; k < num_relations; ++k) {
    datasets::RelationSpec rel;
    rel.name = "rel " + std::to_string(k);  // names with spaces round trip
    rel.same_class_prob = 0.5 + 0.1 * static_cast<double>(k);
    rel.edges_per_member = 2.0 + static_cast<double>(k);
    rel.directed = (seed + k) % 2 == 0;
    config.relations.push_back(rel);
  }
  return config;
}

void ExpectHinEqual(const Hin& a, const Hin& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_relations(), b.num_relations());
  ASSERT_EQ(a.num_classes(), b.num_classes());
  ASSERT_EQ(a.feature_dim(), b.feature_dim());
  for (std::size_t k = 0; k < a.num_relations(); ++k) {
    EXPECT_EQ(a.relation_name(k), b.relation_name(k));
    EXPECT_DOUBLE_EQ(
        a.relation(k).ToDense().MaxAbsDiff(b.relation(k).ToDense()), 0.0);
  }
  for (std::size_t c = 0; c < a.num_classes(); ++c) {
    EXPECT_EQ(a.class_name(c), b.class_name(c));
  }
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.labels(i), b.labels(i));
  }
  EXPECT_DOUBLE_EQ(a.features().ToDense().MaxAbsDiff(b.features().ToDense()),
                   0.0);
}

TEST(HinRoundTripPropertyTest, RandomizedHinsSurviveSaveLoad) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Hin hin =
        datasets::GenerateSyntheticHin(RandomizedConfig(seed));
    std::stringstream ss;
    SaveHin(hin, ss);
    const Result<Hin> back = LoadHin(ss);
    ASSERT_TRUE(back.ok()) << "seed " << seed << ": "
                           << back.status().ToString();
    ExpectHinEqual(hin, *back);
  }
}

TEST(HinRoundTripPropertyTest, SecondSaveIsByteIdentical) {
  // Save -> load -> save must be a fixed point of the text format.
  for (std::uint64_t seed : {3u, 8u}) {
    const Hin hin =
        datasets::GenerateSyntheticHin(RandomizedConfig(seed));
    std::stringstream first;
    SaveHin(hin, first);
    std::stringstream replay(first.str());
    const Result<Hin> back = LoadHin(replay);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    std::stringstream second;
    SaveHin(*back, second);
    EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tmark::hin
