#include <algorithm>

#include <gtest/gtest.h>

#include "tmark/datasets/acm.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/movies.h"
#include "tmark/datasets/nus.h"
#include "tmark/datasets/presets.h"
#include "tmark/datasets/synthetic_hin.h"

namespace tmark::datasets {
namespace {

TEST(DblpPresetTest, ShapeAndNames) {
  DblpOptions options;
  options.num_authors = 200;
  const hin::Hin hin = MakeDblp(options);
  EXPECT_EQ(hin.num_nodes(), 200u);
  EXPECT_EQ(hin.num_relations(), 20u);  // Table 1: 20 conferences
  EXPECT_EQ(hin.num_classes(), 4u);
  EXPECT_EQ(hin.class_name(0), "DB");
  // All Table 1 conferences appear as relation names.
  std::vector<std::string> names;
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    names.push_back(hin.relation_name(k));
  }
  for (const auto& area : DblpAreaConferences()) {
    for (const std::string& conf : area) {
      EXPECT_NE(std::find(names.begin(), names.end(), conf), names.end())
          << conf;
    }
  }
}

TEST(DblpPresetTest, AreaTablesHaveFiveEach) {
  const auto areas = DblpAreaConferences();
  ASSERT_EQ(areas.size(), 4u);
  for (const auto& area : areas) EXPECT_EQ(area.size(), 5u);
}

TEST(DblpPresetTest, Deterministic) {
  DblpOptions options;
  options.num_authors = 120;
  const hin::Hin a = MakeDblp(options);
  const hin::Hin b = MakeDblp(options);
  EXPECT_EQ(a.NumLinks(), b.NumLinks());
}

TEST(DblpPresetTest, EveryClassPopulated) {
  DblpOptions options;
  options.num_authors = 200;
  const hin::Hin hin = MakeDblp(options);
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
    ++counts[hin.PrimaryLabel(i)];
  }
  for (std::size_t c : counts) EXPECT_GT(c, 20u);
}

TEST(MoviesPresetTest, ShapeAndSparsity) {
  MoviesOptions options;
  options.num_movies = 300;
  options.num_directors = 100;
  const hin::Hin hin = MakeMovies(options);
  EXPECT_EQ(hin.num_nodes(), 300u);
  EXPECT_EQ(hin.num_relations(), 100u);
  EXPECT_EQ(hin.num_classes(), 5u);
  // Director links are sparse: far fewer stored entries per relation than
  // nodes (the Table 4 regime).
  EXPECT_LT(hin.NumLinks(), 100u * 60u);
}

TEST(MoviesPresetTest, NamedDirectorsPresent) {
  MoviesOptions options;
  options.num_movies = 300;
  options.num_directors = 60;
  const hin::Hin hin = MakeMovies(options);
  std::vector<std::string> names;
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    names.push_back(hin.relation_name(k));
  }
  for (const char* expected :
       {"Alfred Hitchcock", "Ivan Reitman", "Akira Kurosawa",
        "Steven Spielberg"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(MoviesPresetTest, GenreNamesMatchTable5Columns) {
  const auto genres = MovieGenreNames();
  ASSERT_EQ(genres.size(), 5u);
  EXPECT_EQ(genres[0], "adventure");
  EXPECT_EQ(genres[4], "war");
}

TEST(NusPresetTest, TagsetsHave41Tags) {
  EXPECT_EQ(NusTagNames(NusTagset::kTagset1).size(), 41u);
  EXPECT_EQ(NusTagNames(NusTagset::kTagset2).size(), 41u);
}

TEST(NusPresetTest, BothTagsetsBuild) {
  NusOptions options;
  options.num_images = 250;
  const hin::Hin t1 = MakeNus(options);
  options.tagset = NusTagset::kTagset2;
  const hin::Hin t2 = MakeNus(options);
  EXPECT_EQ(t1.num_relations(), 41u);
  EXPECT_EQ(t2.num_relations(), 41u);
  EXPECT_EQ(t1.num_classes(), 2u);
  EXPECT_EQ(t1.relation_name(0), "sky");
  EXPECT_EQ(t2.relation_name(0), "nature");
}

TEST(NusPresetTest, Tagset1LinksMoreClassPure) {
  NusOptions options;
  options.num_images = 400;
  const hin::Hin t1 = MakeNus(options);
  options.tagset = NusTagset::kTagset2;
  const hin::Hin t2 = MakeNus(options);
  auto same_fraction = [](const hin::Hin& hin) {
    double same = 0.0, total = 0.0;
    for (std::size_t k = 0; k < hin.num_relations(); ++k) {
      const la::SparseMatrix& r = hin.relation(k);
      for (std::size_t i = 0; i < r.rows(); ++i) {
        for (std::size_t p = r.row_ptr()[i]; p < r.row_ptr()[i + 1]; ++p) {
          total += 1.0;
          if (hin.PrimaryLabel(i) == hin.PrimaryLabel(r.col_idx()[p])) {
            same += 1.0;
          }
        }
      }
    }
    return same / total;
  };
  EXPECT_GT(same_fraction(t1), same_fraction(t2) + 0.15);
}

TEST(AcmPresetTest, ShapeAndLinkTypes) {
  AcmOptions options;
  options.num_publications = 250;
  const hin::Hin hin = MakeAcm(options);
  EXPECT_EQ(hin.num_nodes(), 250u);
  EXPECT_EQ(hin.num_relations(), 6u);
  EXPECT_EQ(hin.num_classes(), 8u);
  const auto link_names = AcmLinkTypeNames();
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_EQ(hin.relation_name(k), link_names[k]);
  }
}

TEST(AcmPresetTest, IsMultiLabel) {
  AcmOptions options;
  options.num_publications = 300;
  const hin::Hin hin = MakeAcm(options);
  std::size_t multi = 0;
  for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
    if (hin.labels(i).size() > 1) ++multi;
  }
  EXPECT_GT(multi, 50u);
}

TEST(SyntheticPresetTest, BuildsScalingFamilyGraph) {
  PresetOptions options;
  options.seed = 11;
  const Result<hin::Hin> hin = MakePreset("synthetic:500", options);
  ASSERT_TRUE(hin.ok()) << hin.status().ToString();
  EXPECT_EQ(hin->num_nodes(), 500u);
  EXPECT_EQ(hin->num_relations(), 3u);
  EXPECT_EQ(hin->num_classes(), 3u);
  // Matches the bench's generator exactly — the CLI and the scaling curves
  // must describe the same graph family.
  const hin::Hin direct =
      GenerateSyntheticHin(ScalingSyntheticConfig(500, 11));
  EXPECT_EQ(hin->NumLinks(), direct.NumLinks());
  // Constant average degree: ~2 undirected edges per member per relation,
  // stored as two directed records each (duplicates collapse a few).
  EXPECT_GT(hin->NumLinks(), 500u * 3u * 2u);
  EXPECT_LT(hin->NumLinks(), 500u * 3u * 2u * 2u + 500u);
}

TEST(SyntheticPresetTest, RejectsBadSizes) {
  EXPECT_EQ(MakePreset("synthetic:0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakePreset("synthetic:10000001").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(MakePreset("synthetic:").ok());
  EXPECT_FALSE(MakePreset("synthetic:12x").ok());
  // The size lives in the name; a second size via options is a conflict.
  PresetOptions options;
  options.num_nodes = 100;
  EXPECT_EQ(MakePreset("synthetic:500", options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SyntheticPresetTest, UnknownNamesStillNotFound) {
  EXPECT_EQ(MakePreset("synthetic").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(MakePreset("bogus").status().code(), StatusCode::kNotFound);
}

TEST(AcmPresetTest, CitationRelationIsDirected) {
  AcmOptions options;
  options.num_publications = 250;
  const hin::Hin hin = MakeAcm(options);
  const la::SparseMatrix& cites = hin.relation(5);
  EXPECT_GT(
      cites.ToDense().MaxAbsDiff(cites.Transpose().ToDense()), 0.0);
}

}  // namespace
}  // namespace tmark::datasets
