#include "tmark/datasets/synthetic_hin.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/hin/hin_io.h"

namespace tmark::datasets {
namespace {

SyntheticHinConfig BaseConfig() {
  SyntheticHinConfig config;
  config.num_nodes = 200;
  config.class_names = {"A", "B", "C"};
  config.vocab_size = 90;
  config.words_per_node = 20.0;
  config.feature_signal = 0.8;
  config.seed = 99;
  RelationSpec rel;
  rel.name = "r";
  rel.same_class_prob = 0.85;
  rel.edges_per_member = 3.0;
  config.relations.push_back(rel);
  return config;
}

/// Fraction of stored edges whose endpoints share a primary class.
double SameClassFraction(const hin::Hin& hin, std::size_t k) {
  const la::SparseMatrix& r = hin.relation(k);
  double same = 0.0, total = 0.0;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    for (std::size_t p = r.row_ptr()[i]; p < r.row_ptr()[i + 1]; ++p) {
      total += 1.0;
      if (hin.PrimaryLabel(i) == hin.PrimaryLabel(r.col_idx()[p])) {
        same += 1.0;
      }
    }
  }
  return total > 0.0 ? same / total : 0.0;
}

TEST(SyntheticHinTest, ShapesMatchConfig) {
  const hin::Hin hin = GenerateSyntheticHin(BaseConfig());
  EXPECT_EQ(hin.num_nodes(), 200u);
  EXPECT_EQ(hin.num_relations(), 1u);
  EXPECT_EQ(hin.num_classes(), 3u);
  EXPECT_EQ(hin.feature_dim(), 90u);
  EXPECT_EQ(hin.relation_name(0), "r");
}

TEST(SyntheticHinTest, DeterministicForSeed) {
  const hin::Hin a = GenerateSyntheticHin(BaseConfig());
  const hin::Hin b = GenerateSyntheticHin(BaseConfig());
  EXPECT_EQ(a.NumLinks(), b.NumLinks());
  EXPECT_DOUBLE_EQ(
      a.relation(0).ToDense().MaxAbsDiff(b.relation(0).ToDense()), 0.0);
  EXPECT_DOUBLE_EQ(a.features().ToDense().MaxAbsDiff(b.features().ToDense()),
                   0.0);
}

TEST(SyntheticHinTest, SeedChangesOutput) {
  SyntheticHinConfig other = BaseConfig();
  other.seed = 100;
  const hin::Hin a = GenerateSyntheticHin(BaseConfig());
  const hin::Hin b = GenerateSyntheticHin(other);
  EXPECT_GT(a.relation(0).ToDense().MaxAbsDiff(b.relation(0).ToDense()),
            0.0);
}

TEST(SyntheticHinTest, PlantedAffinityIsRealized) {
  const hin::Hin hin = GenerateSyntheticHin(BaseConfig());
  // Requested 0.85 same-class edges; random cross edges add ~1/3 hits, so
  // the measured fraction is ~0.85 + 0.15/3 = 0.90. Allow generous slack.
  EXPECT_NEAR(SameClassFraction(hin, 0), 0.90, 0.05);
}

TEST(SyntheticHinTest, LowAffinityRelationIsNoisy) {
  SyntheticHinConfig config = BaseConfig();
  config.relations[0].same_class_prob = 1.0 / 3.0;
  const hin::Hin hin = GenerateSyntheticHin(config);
  EXPECT_NEAR(SameClassFraction(hin, 0), 0.55, 0.08);
}

TEST(SyntheticHinTest, ClassPreferenceBiasesSources) {
  SyntheticHinConfig config = BaseConfig();
  config.relations[0].class_preference = {1.0, 0.0, 0.0};
  config.relations[0].same_class_prob = 1.0;
  const hin::Hin hin = GenerateSyntheticHin(config);
  // With pure preference and affinity, all edges stay inside class A.
  EXPECT_NEAR(SameClassFraction(hin, 0), 1.0, 1e-12);
  const la::SparseMatrix& r = hin.relation(0);
  for (std::size_t i = 0; i < r.rows(); ++i) {
    for (std::size_t p = r.row_ptr()[i]; p < r.row_ptr()[i + 1]; ++p) {
      EXPECT_EQ(hin.PrimaryLabel(i), 0u);
    }
  }
}

TEST(SyntheticHinTest, FeatureSignalConcentratesOnTopicBlock) {
  const hin::Hin hin = GenerateSyntheticHin(BaseConfig());
  const std::size_t block = 90 / 3;
  double in_topic = 0.0, total = 0.0;
  const la::SparseMatrix& f = hin.features();
  for (std::size_t i = 0; i < f.rows(); ++i) {
    const std::size_t c = hin.PrimaryLabel(i);
    for (std::size_t p = f.row_ptr()[i]; p < f.row_ptr()[i + 1]; ++p) {
      const double v = f.values()[p];
      total += v;
      if (f.col_idx()[p] >= c * block && f.col_idx()[p] < (c + 1) * block) {
        in_topic += v;
      }
    }
  }
  // signal 0.8 plus uniform noise landing in-block 1/3 of the time.
  EXPECT_NEAR(in_topic / total, 0.8 + 0.2 / 3.0, 0.03);
}

TEST(SyntheticHinTest, SecondaryLabelsGenerated) {
  SyntheticHinConfig config = BaseConfig();
  config.secondary_label_prob = 0.5;
  const hin::Hin hin = GenerateSyntheticHin(config);
  std::size_t multi = 0;
  for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
    if (hin.labels(i).size() > 1) ++multi;
  }
  EXPECT_NEAR(static_cast<double>(multi) / 200.0, 0.5, 0.12);
}

TEST(SyntheticHinTest, DirectedRelationIsAsymmetric) {
  SyntheticHinConfig config = BaseConfig();
  config.relations[0].directed = true;
  const hin::Hin hin = GenerateSyntheticHin(config);
  const la::DenseMatrix d = hin.relation(0).ToDense();
  EXPECT_GT(d.MaxAbsDiff(hin.relation(0).Transpose().ToDense()), 0.0);
}

TEST(SyntheticHinTest, GeneratedHinSerializes) {
  SyntheticHinConfig config = BaseConfig();
  config.num_nodes = 40;
  const hin::Hin hin = GenerateSyntheticHin(config);
  std::stringstream ss;
  hin::SaveHin(hin, ss);
  const hin::Hin back = hin::LoadHin(ss).value();
  EXPECT_EQ(back.num_nodes(), hin.num_nodes());
  EXPECT_EQ(back.NumLinks(), hin.NumLinks());
}

TEST(SyntheticHinTest, CrossClassLinksAvoidSameClass) {
  SyntheticHinConfig config = BaseConfig();
  config.relations[0].same_class_prob = 0.0;
  config.relations[0].cross_class_prob = 1.0;
  const hin::Hin hin = GenerateSyntheticHin(config);
  EXPECT_DOUBLE_EQ(SameClassFraction(hin, 0), 0.0);
}

TEST(SyntheticHinTest, CrossClassPlusSameClassOverOneThrows) {
  SyntheticHinConfig config = BaseConfig();
  config.relations[0].same_class_prob = 0.7;
  config.relations[0].cross_class_prob = 0.5;
  EXPECT_THROW(GenerateSyntheticHin(config), CheckError);
}

/// Recovers a node's latent class from its topic block: with signal 0.8 and
/// ~20 words the majority block identifies the latent class w.h.p.
std::size_t LatentClassFromFeatures(const hin::Hin& hin, std::size_t node,
                                    std::size_t q) {
  const std::size_t block = hin.feature_dim() / q;
  std::vector<double> mass(q, 0.0);
  const la::SparseMatrix& f = hin.features();
  for (std::size_t p = f.row_ptr()[node]; p < f.row_ptr()[node + 1]; ++p) {
    mass[std::min<std::size_t>(q - 1, f.col_idx()[p] / block)] +=
        f.values()[p];
  }
  return la::ArgMax(mass);
}

TEST(SyntheticHinTest, LabelNoiseFlipsObservedLabels) {
  // Features follow the latent class, so the observed/feature disagreement
  // rate estimates the effective flip rate: noise * (1 - 1/q) = 0.2, plus
  // a little slack for feature-inference errors.
  SyntheticHinConfig noisy = BaseConfig();
  noisy.label_noise = 0.3;
  const hin::Hin hin = GenerateSyntheticHin(noisy);
  std::size_t flips = 0;
  for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
    if (LatentClassFromFeatures(hin, i, 3) != hin.PrimaryLabel(i)) ++flips;
  }
  EXPECT_NEAR(static_cast<double>(flips) / 200.0, 0.2, 0.10);
  // And the clean generator shows (almost) no disagreement.
  const hin::Hin clean = GenerateSyntheticHin(BaseConfig());
  std::size_t clean_flips = 0;
  for (std::size_t i = 0; i < clean.num_nodes(); ++i) {
    if (LatentClassFromFeatures(clean, i, 3) != clean.PrimaryLabel(i)) {
      ++clean_flips;
    }
  }
  EXPECT_LT(clean_flips, 15u);
}

TEST(SyntheticHinTest, LabelNoiseLowersObservedLinkPurity) {
  // Links follow the latent classes, so measured same-class purity against
  // the *observed* labels drops once noise is added.
  SyntheticHinConfig noisy = BaseConfig();
  noisy.label_noise = 0.3;
  const hin::Hin with_noise = GenerateSyntheticHin(noisy);
  const hin::Hin clean = GenerateSyntheticHin(BaseConfig());
  EXPECT_LT(SameClassFraction(with_noise, 0),
            SameClassFraction(clean, 0) - 0.1);
}

TEST(SyntheticHinTest, InvalidConfigsThrow) {
  SyntheticHinConfig config = BaseConfig();
  config.relations[0].class_preference = {1.0};  // wrong size
  EXPECT_THROW(GenerateSyntheticHin(config), CheckError);
  SyntheticHinConfig empty = BaseConfig();
  empty.relations.clear();
  EXPECT_THROW(GenerateSyntheticHin(empty), CheckError);
  SyntheticHinConfig one_class = BaseConfig();
  one_class.class_names = {"only"};
  EXPECT_THROW(GenerateSyntheticHin(one_class), CheckError);
}

}  // namespace
}  // namespace tmark::datasets
