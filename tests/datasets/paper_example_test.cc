#include "tmark/datasets/paper_example.h"

#include <gtest/gtest.h>

#include "tmark/hin/feature_similarity.h"
#include "tmark/tensor/transition_tensors.h"

namespace tmark::datasets {
namespace {

TEST(PaperExampleTest, StructureMatchesSection32) {
  const hin::Hin hin = MakePaperExample();
  EXPECT_EQ(hin.num_nodes(), 4u);
  EXPECT_EQ(hin.num_relations(), 3u);
  EXPECT_EQ(hin.num_classes(), 2u);
  EXPECT_EQ(hin.relation_name(0), "co-author");
  EXPECT_EQ(hin.relation_name(1), "citation");
  EXPECT_EQ(hin.relation_name(2), "same conference");
  // co-author p1 -- p2 symmetric.
  EXPECT_DOUBLE_EQ(hin.relation(0).At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(hin.relation(0).At(1, 0), 1.0);
  // citations: p3 cites p2 and p4; p4 cites p1 (stored at (cited, citing)).
  EXPECT_DOUBLE_EQ(hin.relation(1).At(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(hin.relation(1).At(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(hin.relation(1).At(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(hin.relation(1).At(2, 1), 0.0);  // directed
  // same conference p2 -- p3.
  EXPECT_DOUBLE_EQ(hin.relation(2).At(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(hin.relation(2).At(2, 1), 1.0);
}

TEST(PaperExampleTest, TensorHasSevenEntries) {
  const hin::Hin hin = MakePaperExample();
  EXPECT_EQ(hin.ToAdjacencyTensor().NumNonZeros(), 7u);
}

TEST(PaperExampleTest, CosineMatrixMatchesSection43) {
  const hin::Hin hin = MakePaperExample();
  const hin::FeatureSimilarity sim =
      hin::FeatureSimilarity::Build(hin.features());
  // C = [[1,0,0,1],[0,1,1,0],[0,1,1,0],[1,0,0,1]].
  EXPECT_DOUBLE_EQ(sim.Cosine(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(sim.Cosine(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(sim.Cosine(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(sim.Cosine(2, 3), 0.0);
}

TEST(PaperExampleTest, TransitionOColumnsNormalized) {
  const hin::Hin hin = MakePaperExample();
  const tensor::TransitionTensors t =
      tensor::TransitionTensors::Build(hin.ToAdjacencyTensor());
  // Column (j=2, k=1): p3's citations go to p2 and p4 with weight 1/2 each
  // (Fig. 3's O).
  EXPECT_DOUBLE_EQ(t.OEntry(1, 2, 1), 0.5);
  EXPECT_DOUBLE_EQ(t.OEntry(3, 2, 1), 0.5);
  // Column (j=1, k=0): p2's only co-author link goes to p1.
  EXPECT_DOUBLE_EQ(t.OEntry(0, 1, 0), 1.0);
}

TEST(PaperExampleTest, TransitionRFibersNormalized) {
  const hin::Hin hin = MakePaperExample();
  const tensor::TransitionTensors t =
      tensor::TransitionTensors::Build(hin.ToAdjacencyTensor());
  // Pair (0, 1) (p1 <- p2) is linked only by co-author -> R = 1 there.
  EXPECT_DOUBLE_EQ(t.REntry(0, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.REntry(0, 1, 1), 0.0);
  // Pair (1, 2) (p2 <- p3) carries citation + same conference, 1/2 each
  // (Fig. 4's R).
  EXPECT_DOUBLE_EQ(t.REntry(1, 2, 1), 0.5);
  EXPECT_DOUBLE_EQ(t.REntry(1, 2, 2), 0.5);
}

TEST(PaperExampleTest, LabeledNodesAndTruth) {
  const hin::Hin hin = MakePaperExample();
  const auto labeled = PaperExampleLabeledNodes();
  ASSERT_EQ(labeled.size(), 2u);
  EXPECT_TRUE(hin.HasLabel(labeled[0], 0));  // p1 = DM
  EXPECT_TRUE(hin.HasLabel(labeled[1], 1));  // p2 = CV
  const auto truth = PaperExampleHeldOutTruth();
  EXPECT_EQ(truth, (std::vector<std::size_t>{1, 0}));
}

}  // namespace
}  // namespace tmark::datasets
