// Configuration-knob coverage for the baseline classifiers: every exposed
// hyper-parameter must change behaviour the way its contract says, and
// degenerate settings must stay well-defined.

#include <gtest/gtest.h>

#include "tmark/baselines/emr.h"
#include "tmark/baselines/hcc.h"
#include "tmark/baselines/ica.h"
#include "tmark/baselines/wvrn_rl.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/ml/metrics.h"

namespace tmark::baselines {
namespace {

hin::Hin ConfigHin(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 100;
  config.class_names = {"A", "B"};
  config.vocab_size = 40;
  config.words_per_node = 12.0;
  config.feature_signal = 0.75;
  config.seed = seed;
  for (int k = 0; k < 3; ++k) {
    datasets::RelationSpec rel;
    rel.name = "r" + std::to_string(k);
    rel.same_class_prob = k == 0 ? 0.9 : 0.5;
    rel.edges_per_member = 3.0;
    config.relations.push_back(rel);
  }
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> HalfLabeled(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 2) labeled.push_back(i);
  return labeled;
}

TEST(IcaConfigTest, ZeroIterationsIsContentBootstrapOnly) {
  const hin::Hin hin = ConfigHin(81);
  IcaConfig config;
  config.iterations = 0;
  IcaClassifier clf(config);
  clf.Fit(hin, HalfLabeled(hin));
  // Still produces a full confidence matrix.
  EXPECT_EQ(clf.Confidences().rows(), hin.num_nodes());
}

TEST(IcaConfigTest, MoreIterationsChangeTheResult) {
  const hin::Hin hin = ConfigHin(82);
  IcaConfig one;
  one.iterations = 1;
  IcaConfig many;
  many.iterations = 6;
  IcaClassifier a(one), b(many);
  a.Fit(hin, HalfLabeled(hin));
  b.Fit(hin, HalfLabeled(hin));
  EXPECT_GT(a.Confidences().MaxAbsDiff(b.Confidences()), 0.0);
}

TEST(HccConfigTest, MetaPathsToggleChangesFeatures) {
  const hin::Hin hin = ConfigHin(83);
  HccConfig with;
  with.use_meta_paths = true;
  HccConfig without;
  without.use_meta_paths = false;
  HccClassifier a(with), b(without);
  a.Fit(hin, HalfLabeled(hin));
  b.Fit(hin, HalfLabeled(hin));
  EXPECT_GT(a.Confidences().MaxAbsDiff(b.Confidences()), 0.0);
}

TEST(HccConfigTest, ChannelCapRespected) {
  // max_channels = 1 pools everything; must still fit and predict.
  const hin::Hin hin = ConfigHin(84);
  HccConfig config;
  config.max_channels = 1;
  config.use_meta_paths = false;
  HccClassifier clf(config);
  clf.Fit(hin, HalfLabeled(hin));
  EXPECT_EQ(clf.Confidences().cols(), hin.num_classes());
}

TEST(WvrnConfigTest, ZeroIterationsKeepsPrior) {
  const hin::Hin hin = ConfigHin(85);
  WvrnRlConfig config;
  config.iterations = 0;
  WvrnRlClassifier clf(config);
  const auto labeled = HalfLabeled(hin);
  clf.Fit(hin, labeled);
  // Unlabeled rows are exactly the class prior.
  std::vector<bool> is_labeled(hin.num_nodes(), false);
  for (std::size_t i : labeled) is_labeled[i] = true;
  la::Vector prior(hin.num_classes(), 0.0);
  for (std::size_t node : labeled) prior[hin.PrimaryLabel(node)] += 1.0;
  la::NormalizeL1(&prior);
  for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
    if (is_labeled[i]) continue;
    for (std::size_t c = 0; c < hin.num_classes(); ++c) {
      EXPECT_DOUBLE_EQ(clf.Confidences().At(i, c), prior[c]);
    }
    break;  // one row suffices
  }
}

TEST(WvrnConfigTest, DecayStabilizesEstimates) {
  const hin::Hin hin = ConfigHin(86);
  WvrnRlConfig fast_decay;
  fast_decay.decay = 0.2;  // estimates freeze almost immediately
  WvrnRlConfig slow_decay;
  slow_decay.decay = 0.99;
  WvrnRlClassifier a(fast_decay), b(slow_decay);
  a.Fit(hin, HalfLabeled(hin));
  b.Fit(hin, HalfLabeled(hin));
  EXPECT_GT(a.Confidences().MaxAbsDiff(b.Confidences()), 0.0);
}

TEST(EmrConfigTest, MemberCapBoundsEnsembleCost) {
  const hin::Hin hin = ConfigHin(87);
  EmrConfig config;
  config.max_members = 2;
  config.base.epochs = 15;
  EmrClassifier clf(config);
  clf.Fit(hin, HalfLabeled(hin));
  EXPECT_EQ(clf.Confidences().rows(), hin.num_nodes());
  for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
    EXPECT_TRUE(la::IsProbabilityVector(clf.Confidences().Row(i), 1e-9));
  }
}

TEST(EmrConfigTest, ZeroMemberIterationsIsContentVote) {
  const hin::Hin hin = ConfigHin(88);
  EmrConfig config;
  config.member_iterations = 0;
  config.base.epochs = 15;
  EmrClassifier clf(config);
  clf.Fit(hin, HalfLabeled(hin));
  EXPECT_EQ(clf.Confidences().cols(), hin.num_classes());
}

}  // namespace
}  // namespace tmark::baselines
