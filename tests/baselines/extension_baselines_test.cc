// Tests for the related-work extension baselines (RankClass, GNetMine) —
// methods the paper discusses in Sec. 2 but does not put in its tables.

#include <gtest/gtest.h>

#include "tmark/baselines/gnetmine.h"
#include "tmark/baselines/rankclass.h"
#include "tmark/baselines/registry.h"
#include "tmark/common/check.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/ml/metrics.h"

namespace tmark::baselines {
namespace {

hin::Hin TwoRelationHin(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 120;
  config.class_names = {"A", "B"};
  config.vocab_size = 40;
  config.words_per_node = 12.0;
  config.feature_signal = 0.8;
  config.seed = seed;
  datasets::RelationSpec good;
  good.name = "good";
  good.same_class_prob = 0.9;
  good.edges_per_member = 4.0;
  config.relations.push_back(good);
  datasets::RelationSpec noisy;
  noisy.name = "noisy";
  noisy.same_class_prob = 0.0;
  noisy.cross_class_prob = 0.8;
  noisy.edges_per_member = 2.0;
  config.relations.push_back(noisy);
  return datasets::GenerateSyntheticHin(config);
}

double HeldOutAccuracy(const hin::Hin& hin, hin::CollectiveClassifier* clf) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 2) labeled.push_back(i);
  clf->Fit(hin, labeled);
  const auto pred = clf->PredictSingleLabel();
  std::vector<std::size_t> truth_v, pred_v;
  for (std::size_t i = 1; i < hin.num_nodes(); i += 2) {
    truth_v.push_back(hin.PrimaryLabel(i));
    pred_v.push_back(pred[i]);
  }
  return ml::Accuracy(truth_v, pred_v);
}

hin::Hin CleanHin(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 120;
  config.class_names = {"A", "B"};
  config.vocab_size = 40;
  config.words_per_node = 12.0;
  config.feature_signal = 0.8;
  config.seed = seed;
  datasets::RelationSpec good;
  good.name = "good";
  good.same_class_prob = 0.9;
  good.edges_per_member = 4.0;
  config.relations.push_back(good);
  return datasets::GenerateSyntheticHin(config);
}

TEST(RankClassTest, LearnsAndNames) {
  const hin::Hin hin = CleanHin(71);
  RankClassClassifier clf;
  EXPECT_GT(HeldOutAccuracy(hin, &clf), 0.75);
  EXPECT_EQ(clf.Name(), "RankClass");
}

TEST(RankClassTest, NoisyRelationDegradesItLessThanEqualWeighting) {
  // RankClass reweights relations, so the anti-homophilous link hurts it
  // less than the equal-weight GNetMine — the paper's core argument for
  // exploiting relative link importance.
  const hin::Hin hin = TwoRelationHin(76);
  RankClassClassifier rank;
  GNetMineClassifier gnm;
  EXPECT_GT(HeldOutAccuracy(hin, &rank), HeldOutAccuracy(hin, &gnm) - 0.05);
}

TEST(RankClassTest, UpweightsDiscriminativeRelation) {
  const hin::Hin hin = TwoRelationHin(72);
  RankClassClassifier clf;
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 2) labeled.push_back(i);
  clf.Fit(hin, labeled);
  // The homophilous relation (index 0) must carry the larger weight for
  // both classes; the anti-homophilous one connects cross-class pairs only.
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    EXPECT_GT(clf.RelationWeights().At(0, c),
              clf.RelationWeights().At(1, c));
  }
}

TEST(RankClassTest, RelationWeightColumnsSumToOne) {
  const hin::Hin hin = TwoRelationHin(73);
  RankClassClassifier clf;
  clf.Fit(hin, {0, 1, 2, 3, 4, 5});
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    EXPECT_TRUE(
        la::IsProbabilityVector(clf.RelationWeights().Col(c), 1e-9));
  }
}

TEST(RankClassTest, InvalidConfigThrows) {
  RankClassConfig config;
  config.alpha = 0.0;
  EXPECT_THROW(RankClassClassifier{config}, CheckError);
}

TEST(GNetMineTest, LearnsAndNames) {
  const hin::Hin hin = CleanHin(74);
  GNetMineClassifier clf;
  EXPECT_GT(HeldOutAccuracy(hin, &clf), 0.7);
  EXPECT_EQ(clf.Name(), "GNetMine");
}

TEST(GNetMineTest, ConfidenceRowsAreProbabilities) {
  const hin::Hin hin = TwoRelationHin(75);
  GNetMineClassifier clf;
  clf.Fit(hin, {0, 1, 2, 3});
  for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
    EXPECT_TRUE(la::IsProbabilityVector(clf.Confidences().Row(i), 1e-9));
  }
}

TEST(GNetMineTest, InvalidMuThrows) {
  GNetMineConfig config;
  config.mu = 0.0;
  EXPECT_THROW(GNetMineClassifier{config}, CheckError);
}

TEST(ExtensionBaselinesTest, AvailableThroughRegistry) {
  for (const char* name : {"RankClass", "GNetMine", "ZooBP"}) {
    const auto clf = MakeClassifier(name);
    ASSERT_NE(clf, nullptr) << name;
    EXPECT_EQ(clf->Name(), name);
  }
}

TEST(ExtensionBaselinesTest, UnfittedAccessThrows) {
  RankClassClassifier rank;
  EXPECT_THROW(rank.Confidences(), CheckError);
  EXPECT_THROW(rank.RelationWeights(), CheckError);
  GNetMineClassifier gnm;
  EXPECT_THROW(gnm.Confidences(), CheckError);
}

}  // namespace
}  // namespace tmark::baselines
