#include "tmark/baselines/relational_features.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/hin/hin_builder.h"

namespace tmark::baselines {
namespace {

hin::Hin SmallHin() {
  hin::HinBuilder b(3, 2);
  b.AddClass("A");
  b.AddClass("B");
  const std::size_t r0 = b.AddRelation("big");
  const std::size_t r1 = b.AddRelation("small");
  b.AddUndirectedEdge(r0, 0, 1);
  b.AddUndirectedEdge(r0, 1, 2);
  b.AddUndirectedEdge(r1, 0, 2);
  b.SetLabel(0, 0);
  b.SetLabel(1, 1);
  b.SetLabel(2, 1);
  b.AddFeature(0, 0, 3.0);
  b.AddFeature(0, 1, 4.0);
  b.AddFeature(1, 1, 2.0);
  return std::move(b).Build();
}

TEST(ContentFeaturesTest, RowsAreUnitL2) {
  const la::DenseMatrix f = ContentFeatures(SmallHin());
  EXPECT_NEAR(f.At(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(f.At(0, 1), 0.8, 1e-12);
  EXPECT_NEAR(f.At(1, 1), 1.0, 1e-12);
  // All-zero rows stay zero.
  EXPECT_DOUBLE_EQ(f.At(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(f.At(2, 1), 0.0);
}

TEST(NeighborLabelDistributionTest, AggregatesAndNormalizes) {
  const hin::Hin hin = SmallHin();
  la::DenseMatrix probs(3, 2);
  probs.At(0, 0) = 1.0;               // node 0 -> class A
  probs.At(1, 1) = 1.0;               // node 1 -> class B
  probs.At(2, 0) = probs.At(2, 1) = 0.5;
  const la::DenseMatrix rel =
      NeighborLabelDistribution(hin.relation(0), probs);
  // Node 0's only "big" neighbor is 1 (class B).
  EXPECT_DOUBLE_EQ(rel.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(rel.At(0, 1), 1.0);
  // Node 1 has neighbors 0 (A) and 2 (half/half) -> (0.75, 0.25) normalized.
  EXPECT_DOUBLE_EQ(rel.At(1, 0), 0.75);
  EXPECT_DOUBLE_EQ(rel.At(1, 1), 0.25);
}

TEST(NeighborLabelDistributionTest, IsolatedNodeGetsZeros) {
  const la::SparseMatrix empty(2, 2);
  la::DenseMatrix probs(2, 2, 0.5);
  const la::DenseMatrix rel = NeighborLabelDistribution(empty, probs);
  EXPECT_DOUBLE_EQ(rel.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(rel.At(1, 1), 0.0);
}

TEST(ConcatColumnsTest, StacksBlocks) {
  const la::DenseMatrix a = la::DenseMatrix::FromRows({{1.0}, {2.0}});
  const la::DenseMatrix b =
      la::DenseMatrix::FromRows({{3.0, 4.0}, {5.0, 6.0}});
  const la::DenseMatrix cat = ConcatColumns({&a, &b});
  EXPECT_EQ(cat.cols(), 3u);
  EXPECT_DOUBLE_EQ(cat.At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(cat.At(1, 2), 6.0);
}

TEST(ConcatColumnsTest, HeightMismatchThrows) {
  const la::DenseMatrix a(2, 1);
  const la::DenseMatrix b(3, 1);
  EXPECT_THROW(ConcatColumns({&a, &b}), CheckError);
}

TEST(LabeledOneHotTest, OnlyLabeledRowsSet) {
  const hin::Hin hin = SmallHin();
  const la::DenseMatrix oh = LabeledOneHot(hin, {0, 2});
  EXPECT_DOUBLE_EQ(oh.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(oh.At(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(oh.At(1, 0) + oh.At(1, 1), 0.0);  // not in labeled set
}

TEST(SelectRelationChannelsTest, SmallHinKeepsAll) {
  const hin::Hin hin = SmallHin();
  const auto channels = SelectRelationChannels(hin, 5);
  EXPECT_EQ(channels.size(), 2u);
}

TEST(SelectRelationChannelsTest, LargeHinPoolsTail) {
  hin::HinBuilder b(10, 1);
  b.AddClass("A");
  for (int k = 0; k < 5; ++k) {
    const std::size_t rk = b.AddRelation("r" + std::to_string(k));
    // Relation k gets k+1 distinct edges so the ordering is deterministic.
    for (int e = 0; e <= k; ++e) {
      b.AddDirectedEdge(rk, static_cast<std::size_t>(e),
                        static_cast<std::size_t>((e + k + 1) % 10));
    }
  }
  const hin::Hin hin = std::move(b).Build();
  const auto channels = SelectRelationChannels(hin, 3);
  ASSERT_EQ(channels.size(), 3u);
  // The two largest relations (5 and 4 edges) come first; the pooled rest
  // carries 1 + 2 + 3 = 6 edge records.
  EXPECT_EQ(channels[0].NumNonZeros(), 5u);
  EXPECT_EQ(channels[1].NumNonZeros(), 4u);
  double pooled = 0.0;
  for (double v : channels[2].values()) pooled += v;
  EXPECT_DOUBLE_EQ(pooled, 6.0);
}

}  // namespace
}  // namespace tmark::baselines
