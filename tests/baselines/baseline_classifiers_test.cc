#include <memory>

#include <gtest/gtest.h>

#include "tmark/baselines/emr.h"
#include "tmark/baselines/graph_inception.h"
#include "tmark/baselines/hcc.h"
#include "tmark/baselines/highway_net.h"
#include "tmark/baselines/ica.h"
#include "tmark/baselines/wvrn_rl.h"
#include "tmark/common/check.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/ml/metrics.h"

namespace tmark::baselines {
namespace {

/// Small, easy HIN shared by all baseline smoke/learning tests.
hin::Hin EasyHin(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 90;
  config.class_names = {"A", "B"};
  config.vocab_size = 40;
  config.words_per_node = 12.0;
  config.feature_signal = 0.85;
  config.seed = seed;
  datasets::RelationSpec r1;
  r1.name = "good";
  r1.same_class_prob = 0.9;
  r1.edges_per_member = 4.0;
  config.relations.push_back(r1);
  datasets::RelationSpec r2;
  r2.name = "weak";
  r2.same_class_prob = 0.5;
  r2.edges_per_member = 2.0;
  config.relations.push_back(r2);
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> HalfLabeled(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 2) labeled.push_back(i);
  return labeled;
}

double HeldOutAccuracy(const hin::Hin& hin,
                       hin::CollectiveClassifier* clf) {
  const std::vector<std::size_t> labeled = HalfLabeled(hin);
  clf->Fit(hin, labeled);
  const std::vector<std::size_t> pred = clf->PredictSingleLabel();
  std::vector<bool> is_labeled(hin.num_nodes(), false);
  for (std::size_t i : labeled) is_labeled[i] = true;
  std::vector<std::size_t> truth_v, pred_v;
  for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
    if (is_labeled[i]) continue;
    truth_v.push_back(hin.PrimaryLabel(i));
    pred_v.push_back(pred[i]);
  }
  return ml::Accuracy(truth_v, pred_v);
}

TEST(IcaClassifierTest, LearnsEasyHin) {
  const hin::Hin hin = EasyHin(31);
  IcaClassifier clf;
  EXPECT_GT(HeldOutAccuracy(hin, &clf), 0.75);
  EXPECT_EQ(clf.Name(), "ICA");
}

TEST(IcaClassifierTest, ConfidenceShapeAndClamping) {
  const hin::Hin hin = EasyHin(32);
  IcaClassifier clf;
  const std::vector<std::size_t> labeled = HalfLabeled(hin);
  clf.Fit(hin, labeled);
  const la::DenseMatrix& conf = clf.Confidences();
  ASSERT_EQ(conf.rows(), hin.num_nodes());
  ASSERT_EQ(conf.cols(), hin.num_classes());
  // Labeled nodes are clamped to their true one-hot labels.
  for (std::size_t node : labeled) {
    EXPECT_DOUBLE_EQ(conf.At(node, hin.PrimaryLabel(node)), 1.0);
  }
}

TEST(HccClassifierTest, LearnsEasyHin) {
  const hin::Hin hin = EasyHin(33);
  HccClassifier clf;
  EXPECT_GT(HeldOutAccuracy(hin, &clf), 0.75);
  EXPECT_EQ(clf.Name(), "Hcc");
}

TEST(HccClassifierTest, SemiSupervisedVariantName) {
  HccConfig config;
  config.semi_supervised = true;
  HccClassifier clf(config);
  EXPECT_EQ(clf.Name(), "Hcc-ss");
}

TEST(HccClassifierTest, SemiSupervisedLearns) {
  const hin::Hin hin = EasyHin(34);
  HccConfig config;
  config.semi_supervised = true;
  HccClassifier clf(config);
  EXPECT_GT(HeldOutAccuracy(hin, &clf), 0.75);
}

TEST(WvrnRlClassifierTest, LearnsEasyHin) {
  const hin::Hin hin = EasyHin(35);
  WvrnRlClassifier clf;
  EXPECT_GT(HeldOutAccuracy(hin, &clf), 0.7);
  EXPECT_EQ(clf.Name(), "wvRN+RL");
}

TEST(WvrnRlClassifierTest, LabeledNodesStayClamped) {
  const hin::Hin hin = EasyHin(36);
  WvrnRlClassifier clf;
  const std::vector<std::size_t> labeled = HalfLabeled(hin);
  clf.Fit(hin, labeled);
  for (std::size_t node : labeled) {
    EXPECT_DOUBLE_EQ(clf.Confidences().At(node, hin.PrimaryLabel(node)),
                     1.0);
  }
}

TEST(WvrnRlClassifierTest, WorksWithoutContentLinks) {
  const hin::Hin hin = EasyHin(37);
  WvrnRlConfig config;
  config.content_knn = 0;
  WvrnRlClassifier clf(config);
  EXPECT_GT(HeldOutAccuracy(hin, &clf), 0.65);
}

TEST(EmrClassifierTest, LearnsEasyHin) {
  const hin::Hin hin = EasyHin(38);
  EmrConfig config;
  config.base.epochs = 30;
  EmrClassifier clf(config);
  EXPECT_GT(HeldOutAccuracy(hin, &clf), 0.7);
  EXPECT_EQ(clf.Name(), "EMR");
}

TEST(HighwayNetClassifierTest, LearnsFromContentAlone) {
  const hin::Hin hin = EasyHin(39);
  ml::HighwayMlpConfig config;
  config.epochs = 80;
  HighwayNetClassifier clf(config);
  EXPECT_GT(HeldOutAccuracy(hin, &clf), 0.7);
  EXPECT_EQ(clf.Name(), "HN");
}

TEST(GraphInceptionClassifierTest, LearnsEasyHin) {
  const hin::Hin hin = EasyHin(40);
  GraphInceptionClassifier clf;
  EXPECT_GT(HeldOutAccuracy(hin, &clf), 0.7);
  EXPECT_EQ(clf.Name(), "GI");
}

TEST(BaselinesTest, UnfittedAccessThrows) {
  IcaClassifier ica;
  EXPECT_THROW(ica.Confidences(), CheckError);
  HccClassifier hcc;
  EXPECT_THROW(hcc.Confidences(), CheckError);
  WvrnRlClassifier wvrn;
  EXPECT_THROW(wvrn.Confidences(), CheckError);
  EmrClassifier emr;
  EXPECT_THROW(emr.Confidences(), CheckError);
  HighwayNetClassifier hn;
  EXPECT_THROW(hn.Confidences(), CheckError);
  GraphInceptionClassifier gi;
  EXPECT_THROW(gi.Confidences(), CheckError);
}

TEST(BaselinesTest, EmptyLabeledSetThrows) {
  const hin::Hin hin = EasyHin(41);
  IcaClassifier clf;
  EXPECT_THROW(clf.Fit(hin, {}), CheckError);
}

}  // namespace
}  // namespace tmark::baselines
