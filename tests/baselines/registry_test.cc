#include "tmark/baselines/registry.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/paper_example.h"

namespace tmark::baselines {
namespace {

TEST(RegistryTest, PaperMethodNamesMatchTables) {
  const std::vector<std::string> names = PaperMethodNames();
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names.front(), "T-Mark");
  EXPECT_EQ(names.back(), "ICA");
}

TEST(RegistryTest, EveryPaperMethodConstructs) {
  for (const std::string& name : PaperMethodNames()) {
    const auto clf = MakeClassifier(name);
    ASSERT_NE(clf, nullptr) << name;
    EXPECT_EQ(clf->Name(), name);
  }
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW(MakeClassifier("NoSuchMethod"), CheckError);
}

TEST(RegistryTest, TMarkParametersForwarded) {
  const auto clf = MakeClassifier("T-Mark", 0.9, 0.4);
  const auto* tm = dynamic_cast<const core::TMarkClassifier*>(clf.get());
  ASSERT_NE(tm, nullptr);
  EXPECT_DOUBLE_EQ(tm->config().alpha, 0.9);
  EXPECT_DOUBLE_EQ(tm->config().gamma, 0.4);
}

TEST(RegistryTest, TensorRrCcHasIcaDisabled) {
  const auto clf = MakeClassifier("TensorRrCc");
  const auto* tm = dynamic_cast<const core::TMarkClassifier*>(clf.get());
  ASSERT_NE(tm, nullptr);
  EXPECT_FALSE(tm->config().ica_update);
}

TEST(RegistryTest, ConstructedClassifiersFitTheExample) {
  // Cheap smoke: the two tensor methods run end-to-end via the interface.
  const hin::Hin hin = datasets::MakePaperExample();
  for (const std::string& name : {"T-Mark", "TensorRrCc"}) {
    auto clf = MakeClassifier(name);
    clf->Fit(hin, datasets::PaperExampleLabeledNodes());
    EXPECT_EQ(clf->Confidences().rows(), 4u);
  }
}

}  // namespace
}  // namespace tmark::baselines
