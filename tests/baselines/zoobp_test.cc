#include "tmark/baselines/zoobp.h"

#include <gtest/gtest.h>

#include "tmark/baselines/registry.h"
#include "tmark/common/check.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/ml/metrics.h"

namespace tmark::baselines {
namespace {

hin::Hin EasyHin(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 90;
  config.class_names = {"A", "B"};
  config.vocab_size = 40;
  config.words_per_node = 12.0;
  config.feature_signal = 0.8;
  config.seed = seed;
  datasets::RelationSpec rel;
  rel.name = "good";
  rel.same_class_prob = 0.9;
  rel.edges_per_member = 4.0;
  config.relations.push_back(rel);
  return datasets::GenerateSyntheticHin(config);
}

TEST(ZooBpTest, LearnsEasyHin) {
  const hin::Hin hin = EasyHin(61);
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 2) labeled.push_back(i);
  ZooBpClassifier clf;
  clf.Fit(hin, labeled);
  const std::vector<std::size_t> pred = clf.PredictSingleLabel();
  std::vector<std::size_t> truth_v, pred_v;
  for (std::size_t i = 1; i < hin.num_nodes(); i += 2) {
    truth_v.push_back(hin.PrimaryLabel(i));
    pred_v.push_back(pred[i]);
  }
  EXPECT_GT(ml::Accuracy(truth_v, pred_v), 0.8);
  EXPECT_EQ(clf.Name(), "ZooBP");
}

TEST(ZooBpTest, ConfidenceRowsAreProbabilities) {
  const hin::Hin hin = EasyHin(62);
  ZooBpClassifier clf;
  clf.Fit(hin, {0, 1, 2, 3});
  for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
    EXPECT_TRUE(la::IsProbabilityVector(clf.Confidences().Row(i), 1e-9));
  }
}

TEST(ZooBpTest, LabeledNodesKeepTheirClassOnTop) {
  const hin::Hin hin = EasyHin(63);
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) labeled.push_back(i);
  ZooBpClassifier clf;
  clf.Fit(hin, labeled);
  const std::vector<std::size_t> pred = clf.PredictSingleLabel();
  std::size_t kept = 0;
  for (std::size_t node : labeled) {
    if (pred[node] == hin.PrimaryLabel(node)) ++kept;
  }
  EXPECT_GT(static_cast<double>(kept) / labeled.size(), 0.9);
}

TEST(ZooBpTest, InvalidEpsilonThrows) {
  ZooBpConfig config;
  config.epsilon = 1.5;
  EXPECT_THROW(ZooBpClassifier{config}, CheckError);
}

TEST(ZooBpTest, AvailableThroughRegistry) {
  const auto clf = MakeClassifier("ZooBP");
  ASSERT_NE(clf, nullptr);
  EXPECT_EQ(clf->Name(), "ZooBP");
}

TEST(ZooBpTest, UnfittedAccessThrows) {
  ZooBpClassifier clf;
  EXPECT_THROW(clf.Confidences(), CheckError);
}

}  // namespace
}  // namespace tmark::baselines
