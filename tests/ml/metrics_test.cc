#include "tmark/ml/metrics.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"

namespace tmark::ml {
namespace {

TEST(AccuracyTest, Basics) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 2}, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 2, 0}, {0, 1, 0, 1}), 0.5);
  EXPECT_THROW(Accuracy({}, {}), CheckError);
  EXPECT_THROW(Accuracy({0}, {0, 1}), CheckError);
}

TEST(ConfusionMatrixTest, CountsEntries) {
  const la::DenseMatrix cm =
      ConfusionMatrix({0, 0, 1, 1, 1}, {0, 1, 1, 1, 0}, 2);
  EXPECT_DOUBLE_EQ(cm.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cm.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(cm.At(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(cm.At(1, 0), 1.0);
}

TEST(MacroF1Test, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
}

TEST(MacroF1Test, HandComputedCase) {
  // Class 0: tp=1 fp=1 fn=0 -> f1 = 2/3; class 1: tp=1 fp=0 fn=1 -> 2/3.
  const double f1 = MacroF1({0, 1, 1}, {0, 1, 0}, 2);
  EXPECT_NEAR(f1, 2.0 / 3.0, 1e-12);
}

TEST(MacroF1Test, AbsentClassesSkipped) {
  // Class 2 appears nowhere; macro-F1 averages classes 0 and 1 only.
  EXPECT_DOUBLE_EQ(MacroF1({0, 1}, {0, 1}, 3), 1.0);
}

TEST(MultiLabelMacroF1Test, PerfectAndPartial) {
  EXPECT_DOUBLE_EQ(MultiLabelMacroF1({{0, 1}, {1}}, {{0, 1}, {1}}, 2), 1.0);
  // Class 0: tp=1 fp=0 fn=0 -> 1.0. Class 1: tp=1 fp=1 fn=1 -> 0.5.
  const double f1 =
      MultiLabelMacroF1({{0, 1}, {0}}, {{0, 1}, {0, 1}}, 2);
  // Hmm: class 1 truth {node0}, predicted {node0, node1}: tp=1 fp=1 fn=0
  // -> 2/3. Average = (1.0 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(f1, 5.0 / 6.0, 1e-12);
}

TEST(MultiLabelMacroF1Test, EmptyPredictionsScoreZeroRecall) {
  const double f1 = MultiLabelMacroF1({{0}, {0}}, {{}, {}}, 1);
  EXPECT_DOUBLE_EQ(f1, 0.0);
}

TEST(MultiLabelMicroF1Test, PoolsGlobally) {
  // tp = 2, fp = 1, fn = 1 -> micro F1 = 2*2 / (2*2 + 1 + 1) = 2/3.
  const double f1 = MultiLabelMicroF1({{0, 1}, {1}}, {{0}, {1, 0}});
  // node0: pred {0}: tp=1, fn(label 1)=1. node1: pred {1,0}: tp=1, fp=1.
  EXPECT_NEAR(f1, 2.0 / 3.0, 1e-12);
}

TEST(MultiLabelMicroF1Test, AllEmptyIsZero) {
  EXPECT_DOUBLE_EQ(MultiLabelMicroF1({{}, {}}, {{}, {}}), 0.0);
}

TEST(MetricsTest, SizeMismatchThrows) {
  EXPECT_THROW(MultiLabelMacroF1({{0}}, {{0}, {1}}, 2), CheckError);
  EXPECT_THROW(MultiLabelMicroF1({{0}}, {}), CheckError);
}

}  // namespace
}  // namespace tmark::ml
