#include "tmark/ml/graph_conv.h"

#include <gtest/gtest.h>

#include "tmark/common/random.h"
#include "tmark/ml/metrics.h"

namespace tmark::ml {
namespace {

TEST(SymmetricNormalizeTest, OutputIsSymmetric) {
  const la::SparseMatrix a = la::SparseMatrix::FromTriplets(
      4, 4, {{0, 1, 1.0}, {2, 3, 1.0}, {1, 2, 1.0}});
  const la::SparseMatrix norm = SymmetricNormalize(a);
  const la::DenseMatrix d = norm.ToDense();
  EXPECT_LT(d.MaxAbsDiff(norm.Transpose().ToDense()), 1e-12);
}

TEST(SymmetricNormalizeTest, IsolatedNodeKeepsSelfLoop) {
  const la::SparseMatrix a =
      la::SparseMatrix::FromTriplets(3, 3, {{0, 1, 1.0}});
  const la::SparseMatrix norm = SymmetricNormalize(a);
  // Node 2 only has its self-loop, normalized to 1.
  EXPECT_NEAR(norm.At(2, 2), 1.0, 1e-12);
}

TEST(SymmetricNormalizeTest, RegularGraphRowsSumToOne) {
  // A 4-cycle is 2-regular; with self-loops deg = 3 everywhere, so
  // D^{-1/2} (A + I) D^{-1/2} has rows summing to 1.
  const la::SparseMatrix a = la::SparseMatrix::FromTriplets(
      4, 4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0}});
  const la::Vector sums = SymmetricNormalize(a).RowSums();
  for (double s : sums) EXPECT_NEAR(s, 1.0, 1e-12);
}

/// Builds a 2-community graph with informative features.
void MakeCommunityData(std::size_t per_class, la::SparseMatrix* features,
                       std::vector<la::SparseMatrix>* adjacencies,
                       std::vector<std::size_t>* y, Rng* rng) {
  const std::size_t n = 2 * per_class;
  std::vector<la::Triplet> feats, edges;
  y->assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i < per_class ? 0 : 1;
    (*y)[i] = c;
    // Two signal dims per class plus a noise dim.
    feats.push_back({static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(c * 2 + rng->UniformInt(2)),
                     1.0});
    if (rng->Bernoulli(0.5)) {
      feats.push_back({static_cast<std::uint32_t>(i), 4, 1.0});
    }
  }
  for (std::size_t e = 0; e < 4 * n; ++e) {
    const std::size_t i = rng->UniformInt(n);
    std::size_t j;
    if (rng->Bernoulli(0.9)) {
      // Same community.
      j = (i < per_class) ? rng->UniformInt(per_class)
                          : per_class + rng->UniformInt(per_class);
    } else {
      j = rng->UniformInt(n);
    }
    if (i != j) {
      edges.push_back({static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(j), 1.0});
    }
  }
  *features = la::SparseMatrix::FromTriplets(n, 5, feats);
  adjacencies->clear();
  adjacencies->push_back(la::SparseMatrix::FromTriplets(n, n, edges));
}

TEST(GraphInceptionNetTest, LearnsCommunities) {
  Rng rng(11);
  la::SparseMatrix features;
  std::vector<la::SparseMatrix> adjacencies;
  std::vector<std::size_t> y;
  MakeCommunityData(40, &features, &adjacencies, &y, &rng);
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < y.size(); i += 2) labeled.push_back(i);
  GraphInceptionNet net;
  net.Fit(features, adjacencies, y, labeled, 2);
  const la::DenseMatrix& proba = net.Proba();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (la::ArgMax(proba.Row(i)) == y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(y.size()),
            0.85);
}

TEST(GraphInceptionNetTest, ChannelCapPoolsTail) {
  Rng rng(12);
  la::SparseMatrix features;
  std::vector<la::SparseMatrix> adjacencies;
  std::vector<std::size_t> y;
  MakeCommunityData(20, &features, &adjacencies, &y, &rng);
  // Duplicate the adjacency into 12 relations; cap at 4 channels x 2 hops.
  std::vector<la::SparseMatrix> many(12, adjacencies[0]);
  GraphInceptionNetConfig config;
  config.max_channels = 4;
  config.hops = 2;
  config.epochs = 5;
  GraphInceptionNet net(config);
  std::vector<std::size_t> labeled = {0, 1, 20, 21};
  net.Fit(features, many, y, labeled, 2);
  EXPECT_EQ(net.num_channels(), 8u);  // 4 channels x 2 hops
}

TEST(GraphInceptionNetTest, ProbaRowsSumToOne) {
  Rng rng(13);
  la::SparseMatrix features;
  std::vector<la::SparseMatrix> adjacencies;
  std::vector<std::size_t> y;
  MakeCommunityData(15, &features, &adjacencies, &y, &rng);
  GraphInceptionNetConfig config;
  config.epochs = 10;
  GraphInceptionNet net(config);
  std::vector<std::size_t> labeled = {0, 1, 15, 16};
  net.Fit(features, adjacencies, y, labeled, 2);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(la::IsProbabilityVector(net.Proba().Row(i), 1e-9));
  }
}

}  // namespace
}  // namespace tmark::ml
