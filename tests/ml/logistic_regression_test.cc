#include "tmark/ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/common/random.h"
#include "tmark/ml/metrics.h"

namespace tmark::ml {
namespace {

/// Three Gaussian blobs, one per class.
void MakeBlobs(std::size_t per_class, double spread, Rng* rng,
               la::DenseMatrix* x, std::vector<std::size_t>* y) {
  const double centers[3][2] = {{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}};
  *x = la::DenseMatrix(3 * per_class, 2);
  y->clear();
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = c * per_class + i;
      x->At(row, 0) = rng->Normal(centers[c][0], spread);
      x->At(row, 1) = rng->Normal(centers[c][1], spread);
      y->push_back(c);
    }
  }
}

TEST(SoftmaxTest, NormalizesAndOrders) {
  la::Vector v = {1.0, 3.0, 2.0};
  SoftmaxInPlace(&v);
  EXPECT_TRUE(la::IsProbabilityVector(v, 1e-12));
  EXPECT_GT(v[1], v[2]);
  EXPECT_GT(v[2], v[0]);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  la::Vector v = {1000.0, 1001.0};
  SoftmaxInPlace(&v);
  EXPECT_TRUE(la::IsProbabilityVector(v, 1e-12));
  EXPECT_GT(v[1], v[0]);
}

TEST(LogisticRegressionTest, SeparableBlobsLearned) {
  Rng rng(3);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(40, 0.5, &rng, &x, &y);
  LogisticRegression model;
  model.Fit(x, y, 3);
  EXPECT_GT(Accuracy(y, model.Predict(x)), 0.95);
}

TEST(LogisticRegressionTest, ProbaRowsSumToOne) {
  Rng rng(4);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(20, 1.0, &rng, &x, &y);
  LogisticRegression model;
  model.Fit(x, y, 3);
  const la::DenseMatrix proba = model.PredictProba(x);
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    EXPECT_TRUE(la::IsProbabilityVector(proba.Row(i), 1e-9));
  }
}

TEST(LogisticRegressionTest, TrainingReducesLoss) {
  Rng rng(5);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(30, 0.8, &rng, &x, &y);
  LogisticRegressionConfig short_config;
  short_config.epochs = 1;
  LogisticRegression short_model(short_config);
  short_model.Fit(x, y, 3);
  LogisticRegression long_model;
  long_model.Fit(x, y, 3);
  EXPECT_LT(long_model.Loss(x, y), short_model.Loss(x, y));
}

TEST(LogisticRegressionTest, DeterministicGivenSeed) {
  Rng rng(6);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(15, 0.7, &rng, &x, &y);
  LogisticRegression a, b;
  a.Fit(x, y, 3);
  b.Fit(x, y, 3);
  EXPECT_DOUBLE_EQ(a.weights().MaxAbsDiff(b.weights()), 0.0);
}

TEST(LogisticRegressionTest, InputValidation) {
  LogisticRegression model;
  la::DenseMatrix x(2, 2);
  EXPECT_THROW(model.Fit(x, {0}, 2), CheckError);        // size mismatch
  EXPECT_THROW(model.Fit(x, {0, 2}, 2), CheckError);     // label out of range
  EXPECT_THROW(model.Fit(x, {0, 0}, 1), CheckError);     // < 2 classes
  EXPECT_THROW(model.PredictProba(x), CheckError);       // unfitted
}

TEST(LogisticRegressionTest, UnseenClassGetsZeroishProbability) {
  // Train with targets only from classes {0, 1} but declare 3 classes.
  la::DenseMatrix x = la::DenseMatrix::FromRows(
      {{0.0, 1.0}, {0.0, 1.2}, {1.0, 0.0}, {1.2, 0.0}});
  LogisticRegression model;
  model.Fit(x, {0, 0, 1, 1}, 3);
  const la::DenseMatrix proba = model.PredictProba(x);
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    EXPECT_LT(proba.At(i, 2), 0.34);
  }
}

}  // namespace
}  // namespace tmark::ml
