#include "tmark/ml/mlp.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/common/random.h"
#include "tmark/ml/metrics.h"

namespace tmark::ml {
namespace {

void MakeBlobs(std::size_t per_class, double spread, Rng* rng,
               la::DenseMatrix* x, std::vector<std::size_t>* y) {
  const double centers[2][2] = {{0.0, 0.0}, {3.0, 3.0}};
  *x = la::DenseMatrix(2 * per_class, 2);
  y->clear();
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = c * per_class + i;
      x->At(row, 0) = rng->Normal(centers[c][0], spread);
      x->At(row, 1) = rng->Normal(centers[c][1], spread);
      y->push_back(c);
    }
  }
}

/// XOR: not linearly separable; requires the nonlinear hidden layers.
void MakeXor(std::size_t per_quadrant, Rng* rng, la::DenseMatrix* x,
             std::vector<std::size_t>* y) {
  *x = la::DenseMatrix(4 * per_quadrant, 2);
  y->clear();
  const double signs[4][2] = {{1, 1}, {-1, -1}, {1, -1}, {-1, 1}};
  for (std::size_t quad = 0; quad < 4; ++quad) {
    for (std::size_t i = 0; i < per_quadrant; ++i) {
      const std::size_t row = quad * per_quadrant + i;
      x->At(row, 0) = signs[quad][0] * rng->Uniform(0.5, 1.5);
      x->At(row, 1) = signs[quad][1] * rng->Uniform(0.5, 1.5);
      y->push_back(quad < 2 ? 0 : 1);
    }
  }
}

TEST(HighwayMlpTest, LearnsLinearBlobs) {
  Rng rng(1);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(40, 0.5, &rng, &x, &y);
  HighwayMlp net;
  net.Fit(x, y, 2);
  EXPECT_GT(Accuracy(y, net.Predict(x)), 0.95);
}

TEST(HighwayMlpTest, LearnsXor) {
  Rng rng(2);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeXor(30, &rng, &x, &y);
  HighwayMlpConfig config;
  config.epochs = 300;
  config.hidden = 16;
  HighwayMlp net(config);
  net.Fit(x, y, 2);
  EXPECT_GT(Accuracy(y, net.Predict(x)), 0.9);
}

TEST(HighwayMlpTest, TrainingReducesLoss) {
  Rng rng(3);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeXor(20, &rng, &x, &y);
  HighwayMlpConfig brief;
  brief.epochs = 1;
  HighwayMlp a(brief);
  a.Fit(x, y, 2);
  HighwayMlpConfig longer;
  longer.epochs = 200;
  HighwayMlp b(longer);
  b.Fit(x, y, 2);
  EXPECT_LT(b.Loss(x, y), a.Loss(x, y));
}

TEST(HighwayMlpTest, ProbaRowsSumToOne) {
  Rng rng(4);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(20, 1.0, &rng, &x, &y);
  HighwayMlp net;
  net.Fit(x, y, 2);
  const la::DenseMatrix proba = net.PredictProba(x);
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    EXPECT_TRUE(la::IsProbabilityVector(proba.Row(i), 1e-9));
  }
}

TEST(HighwayMlpTest, DeterministicGivenSeed) {
  Rng rng(5);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(10, 0.6, &rng, &x, &y);
  HighwayMlp a, b;
  a.Fit(x, y, 2);
  b.Fit(x, y, 2);
  EXPECT_DOUBLE_EQ(a.PredictProba(x).MaxAbsDiff(b.PredictProba(x)), 0.0);
}

TEST(HighwayMlpTest, ZeroHighwayLayersStillWorks) {
  Rng rng(6);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(30, 0.5, &rng, &x, &y);
  HighwayMlpConfig config;
  config.num_highway_layers = 0;
  HighwayMlp net(config);
  net.Fit(x, y, 2);
  EXPECT_GT(Accuracy(y, net.Predict(x)), 0.9);
}

TEST(HighwayMlpTest, UnfittedPredictThrows) {
  HighwayMlp net;
  EXPECT_THROW(net.PredictProba(la::DenseMatrix(1, 2)), CheckError);
}

}  // namespace
}  // namespace tmark::ml
