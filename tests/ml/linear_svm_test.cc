#include "tmark/ml/linear_svm.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/common/random.h"
#include "tmark/ml/metrics.h"

namespace tmark::ml {
namespace {

void MakeBlobs(std::size_t per_class, double spread, Rng* rng,
               la::DenseMatrix* x, std::vector<std::size_t>* y) {
  const double centers[3][2] = {{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}};
  *x = la::DenseMatrix(3 * per_class, 2);
  y->clear();
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = c * per_class + i;
      x->At(row, 0) = rng->Normal(centers[c][0], spread);
      x->At(row, 1) = rng->Normal(centers[c][1], spread);
      y->push_back(c);
    }
  }
}

TEST(LinearSvmTest, SeparableBlobsLearned) {
  Rng rng(7);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(40, 0.5, &rng, &x, &y);
  LinearSvm model;
  model.Fit(x, y, 3);
  EXPECT_GT(Accuracy(y, model.Predict(x)), 0.95);
}

TEST(LinearSvmTest, DecisionMarginsFavorTrueClass) {
  Rng rng(8);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(30, 0.4, &rng, &x, &y);
  LinearSvm model;
  model.Fit(x, y, 3);
  const la::DenseMatrix margins = model.DecisionFunction(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (la::ArgMax(margins.Row(i)) == y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(x.rows()),
            0.95);
}

TEST(LinearSvmTest, ProbaRowsSumToOne) {
  Rng rng(9);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(20, 1.0, &rng, &x, &y);
  LinearSvm model;
  model.Fit(x, y, 3);
  const la::DenseMatrix proba = model.PredictProba(x);
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    EXPECT_TRUE(la::IsProbabilityVector(proba.Row(i), 1e-9));
  }
}

TEST(LinearSvmTest, BinaryProblem) {
  la::DenseMatrix x = la::DenseMatrix::FromRows(
      {{-1.0, 0.0}, {-1.2, 0.1}, {1.0, 0.0}, {1.1, -0.1}});
  LinearSvm model;
  model.Fit(x, {0, 0, 1, 1}, 2);
  EXPECT_EQ(model.Predict(x), (std::vector<std::size_t>{0, 0, 1, 1}));
}

TEST(LinearSvmTest, DeterministicGivenSeed) {
  Rng rng(10);
  la::DenseMatrix x;
  std::vector<std::size_t> y;
  MakeBlobs(15, 0.6, &rng, &x, &y);
  LinearSvm a, b;
  a.Fit(x, y, 3);
  b.Fit(x, y, 3);
  EXPECT_DOUBLE_EQ(
      a.DecisionFunction(x).MaxAbsDiff(b.DecisionFunction(x)), 0.0);
}

TEST(LinearSvmTest, InputValidation) {
  LinearSvm model;
  la::DenseMatrix x(2, 2);
  EXPECT_THROW(model.Fit(x, {0}, 2), CheckError);
  EXPECT_THROW(model.Fit(x, {0, 5}, 2), CheckError);
  EXPECT_THROW(model.DecisionFunction(x), CheckError);
}

}  // namespace
}  // namespace tmark::ml
