#include "tmark/ml/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tmark/common/check.h"

namespace tmark::ml {
namespace {

/// Minimizes f(p) = 0.5 * ||p - target||^2 with the given optimizer.
double Converge(Optimizer* opt, std::vector<double> params,
                const std::vector<double>& target, int steps) {
  std::vector<double> grads(params.size());
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      grads[i] = params[i] - target[i];
    }
    opt->Step(grads, &params);
  }
  double err = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    err += std::abs(params[i] - target[i]);
  }
  return err;
}

TEST(SgdOptimizerTest, ConvergesOnQuadratic) {
  SgdOptimizer opt(3, 0.1);
  EXPECT_LT(Converge(&opt, {0.0, 0.0, 0.0}, {1.0, -2.0, 3.0}, 200), 1e-6);
}

TEST(SgdOptimizerTest, MomentumAccelerates) {
  SgdOptimizer plain(1, 0.01);
  SgdOptimizer momentum(1, 0.01, 0.9);
  const double err_plain = Converge(&plain, {0.0}, {5.0}, 50);
  const double err_momentum = Converge(&momentum, {0.0}, {5.0}, 50);
  EXPECT_LT(err_momentum, err_plain);
}

TEST(SgdOptimizerTest, ResetClearsVelocity) {
  SgdOptimizer opt(1, 0.5, 0.9);
  std::vector<double> p = {0.0};
  opt.Step({1.0}, &p);
  opt.Reset();
  std::vector<double> p2 = {0.0};
  opt.Step({1.0}, &p2);
  EXPECT_DOUBLE_EQ(p[0], p2[0]);
}

TEST(SgdOptimizerTest, InvalidHyperparamsThrow) {
  EXPECT_THROW(SgdOptimizer(1, 0.0), CheckError);
  EXPECT_THROW(SgdOptimizer(1, 0.1, 1.0), CheckError);
}

TEST(SgdOptimizerTest, SizeMismatchThrows) {
  SgdOptimizer opt(2, 0.1);
  std::vector<double> p = {0.0};
  EXPECT_THROW(opt.Step({1.0, 2.0}, &p), CheckError);
}

TEST(AdamOptimizerTest, ConvergesOnQuadratic) {
  AdamOptimizer opt(3, 0.1);
  EXPECT_LT(Converge(&opt, {0.0, 0.0, 0.0}, {1.0, -2.0, 3.0}, 500), 1e-4);
}

TEST(AdamOptimizerTest, HandlesIllConditionedScales) {
  // Adam's per-coordinate scaling copes with wildly different curvatures.
  AdamOptimizer opt(2, 0.05);
  std::vector<double> params = {0.0, 0.0};
  const std::vector<double> target = {100.0, 0.001};
  std::vector<double> grads(2);
  for (int s = 0; s < 4000; ++s) {
    grads[0] = 0.01 * (params[0] - target[0]);
    grads[1] = 100.0 * (params[1] - target[1]);
    opt.Step(grads, &params);
  }
  EXPECT_NEAR(params[1], target[1], 1e-3);
  EXPECT_GT(params[0], 50.0);
}

TEST(AdamOptimizerTest, ResetRestartsMoments) {
  AdamOptimizer opt(1, 0.1);
  std::vector<double> p = {0.0};
  opt.Step({1.0}, &p);
  const double first = p[0];
  opt.Reset();
  std::vector<double> p2 = {0.0};
  opt.Step({1.0}, &p2);
  EXPECT_DOUBLE_EQ(first, p2[0]);
}

}  // namespace
}  // namespace tmark::ml
