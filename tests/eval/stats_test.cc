#include "tmark/eval/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/common/random.h"

namespace tmark::eval {
namespace {

TEST(StatsTest, MeanAndStdDevHandComputed) {
  const std::vector<double> sample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(sample), 5.0);
  // Sum of squared deviations = 32, n-1 = 7.
  EXPECT_NEAR(SampleStdDev(sample), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, StdDevDegenerateCases) {
  EXPECT_DOUBLE_EQ(SampleStdDev({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({3.0, 3.0, 3.0}), 0.0);
  EXPECT_THROW(Mean({}), CheckError);
}

TEST(StatsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(StatsTest, WelchDetectsClearSeparation) {
  const std::vector<double> a = {0.90, 0.91, 0.92, 0.93, 0.91, 0.92};
  const std::vector<double> b = {0.70, 0.72, 0.71, 0.69, 0.70, 0.71};
  const TTestResult result = WelchTTest(a, b);
  EXPECT_GT(result.t_statistic, 10.0);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(StatsTest, WelchFindsNoDifferenceInIdenticalDistributions) {
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.Normal(0.8, 0.05));
    b.push_back(rng.Normal(0.8, 0.05));
  }
  const TTestResult result = WelchTTest(a, b);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(StatsTest, WelchZeroVarianceCases) {
  const TTestResult same = WelchTTest({1.0, 1.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(same.p_value, 1.0);
  const TTestResult differ = WelchTTest({1.0, 1.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(differ.p_value, 0.0);
}

TEST(StatsTest, PairedTestIsMoreSensitiveThanUnpaired) {
  // Strongly correlated trials with a small consistent gap: the paired test
  // must flag the difference even though the marginals overlap.
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 12; ++i) {
    const double trial = rng.Normal(0.8, 0.08);  // trial difficulty
    a.push_back(trial + 0.01);
    b.push_back(trial);
  }
  const TTestResult paired = PairedTTest(a, b);
  const TTestResult unpaired = WelchTTest(a, b);
  EXPECT_LT(paired.p_value, 0.01);
  EXPECT_LT(paired.p_value, unpaired.p_value);
}

TEST(StatsTest, PairedRequiresEqualSizes) {
  EXPECT_THROW(PairedTTest({1.0, 2.0}, {1.0}), CheckError);
}

TEST(StatsTest, PairedAllEqualIsPValueOne) {
  const TTestResult result = PairedTTest({0.5, 0.6}, {0.5, 0.6});
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(KFoldTest, PartitionsEveryIndexOnce) {
  const auto folds = KFoldIndices(10, 3);
  ASSERT_EQ(folds.size(), 3u);
  EXPECT_EQ(folds[0].size(), 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(folds[1].size(), 3u);
  EXPECT_EQ(folds[2].size(), 3u);
  std::vector<bool> seen(10, false);
  for (const auto& fold : folds) {
    for (std::size_t idx : fold) {
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(KFoldTest, ExactDivision) {
  const auto folds = KFoldIndices(9, 3);
  for (const auto& fold : folds) EXPECT_EQ(fold.size(), 3u);
}

TEST(KFoldTest, InvalidFoldCountsThrow) {
  EXPECT_THROW(KFoldIndices(5, 1), CheckError);
  EXPECT_THROW(KFoldIndices(3, 4), CheckError);
}

}  // namespace
}  // namespace tmark::eval
