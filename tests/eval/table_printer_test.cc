#include "tmark/eval/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

#include "tmark/common/check.h"

namespace tmark::eval {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Method", "Acc"});
  table.AddRow({"T-Mark", "0.93"});
  table.AddRow({"ICA", "0.86"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("T-Mark  0.93"), std::string::npos);
  EXPECT_NE(out.find("ICA"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, WideCellsStretchColumn) {
  TablePrinter table({"A", "B"});
  table.AddRow({"verylongcellvalue", "x"});
  std::ostringstream os;
  table.Print(os);
  // The header row pads "A" to the width of the long cell.
  const std::string first_line = os.str().substr(0, os.str().find('\n'));
  EXPECT_GE(first_line.size(), std::string("verylongcellvalue  B").size());
}

TEST(TablePrinterTest, RowArityChecked) {
  TablePrinter table({"A", "B"});
  EXPECT_THROW(table.AddRow({"only one"}), CheckError);
}

TEST(TablePrinterTest, EmptyHeadersRejected) {
  EXPECT_THROW(TablePrinter({}), CheckError);
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter table({"A"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"x"});
  table.AddRow({"y"});
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace tmark::eval
