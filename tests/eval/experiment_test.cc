#include "tmark/eval/experiment.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/baselines/registry.h"
#include "tmark/datasets/synthetic_hin.h"

namespace tmark::eval {
namespace {

hin::Hin SmallHin(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 80;
  config.class_names = {"A", "B"};
  config.vocab_size = 30;
  config.words_per_node = 10.0;
  config.feature_signal = 0.85;
  config.seed = seed;
  datasets::RelationSpec rel;
  rel.name = "r";
  rel.same_class_prob = 0.9;
  rel.edges_per_member = 4.0;
  config.relations.push_back(rel);
  return datasets::GenerateSyntheticHin(config);
}

TEST(StratifiedSplitTest, FractionApproximatelyRespected) {
  const hin::Hin hin = SmallHin(1);
  Rng rng(2);
  const auto labeled = StratifiedSplit(hin, 0.25, &rng);
  EXPECT_NEAR(static_cast<double>(labeled.size()),
              0.25 * static_cast<double>(hin.num_nodes()), 3.0);
}

TEST(StratifiedSplitTest, EveryClassRepresented) {
  const hin::Hin hin = SmallHin(3);
  Rng rng(4);
  const auto labeled = StratifiedSplit(hin, 0.05, &rng);
  std::vector<bool> seen(hin.num_classes(), false);
  for (std::size_t node : labeled) seen[hin.PrimaryLabel(node)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(StratifiedSplitTest, SortedAndUnique) {
  const hin::Hin hin = SmallHin(5);
  Rng rng(6);
  const auto labeled = StratifiedSplit(hin, 0.5, &rng);
  for (std::size_t i = 1; i < labeled.size(); ++i) {
    EXPECT_LT(labeled[i - 1], labeled[i]);
  }
}

TEST(StratifiedSplitTest, InvalidFractionThrows) {
  const hin::Hin hin = SmallHin(7);
  Rng rng(8);
  EXPECT_THROW(StratifiedSplit(hin, 0.0, &rng), CheckError);
  EXPECT_THROW(StratifiedSplit(hin, 1.0, &rng), CheckError);
}

TEST(EvaluateClassifierTest, ScoresInUnitInterval) {
  const hin::Hin hin = SmallHin(9);
  Rng rng(10);
  const auto labeled = StratifiedSplit(hin, 0.3, &rng);
  auto clf = baselines::MakeClassifier("T-Mark");
  const double acc = EvaluateClassifier(hin, clf.get(), labeled,
                                        /*multi_label=*/false, 0.5);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  EXPECT_GT(acc, 0.5);  // should beat chance on this easy HIN
}

TEST(RunSweepTest, ProducesOneCellPerFraction) {
  const hin::Hin hin = SmallHin(11);
  SweepConfig config;
  config.train_fractions = {0.2, 0.5};
  config.trials = 2;
  const MethodSweep sweep = RunSweep(hin, "T-Mark", config);
  EXPECT_EQ(sweep.method, "T-Mark");
  ASSERT_EQ(sweep.cells.size(), 2u);
  for (const SweepCell& cell : sweep.cells) {
    EXPECT_GE(cell.mean, 0.0);
    EXPECT_LE(cell.mean, 1.0);
    EXPECT_GE(cell.stddev, 0.0);
  }
}

TEST(RunSweepTest, DeterministicForSeed) {
  const hin::Hin hin = SmallHin(13);
  SweepConfig config;
  config.train_fractions = {0.3};
  config.trials = 2;
  const MethodSweep a = RunSweep(hin, "TensorRrCc", config);
  const MethodSweep b = RunSweep(hin, "TensorRrCc", config);
  EXPECT_DOUBLE_EQ(a.cells[0].mean, b.cells[0].mean);
}

TEST(BenchEnvTest, TrialsOverride) {
  unsetenv("TMARK_BENCH_TRIALS");
  EXPECT_EQ(BenchTrials(3), 3);
  setenv("TMARK_BENCH_TRIALS", "7", 1);
  EXPECT_EQ(BenchTrials(3), 7);
  setenv("TMARK_BENCH_TRIALS", "bogus", 1);
  EXPECT_EQ(BenchTrials(3), 3);
  unsetenv("TMARK_BENCH_TRIALS");
}

TEST(BenchEnvTest, ScaleOverride) {
  unsetenv("TMARK_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
  setenv("TMARK_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.5);
  setenv("TMARK_BENCH_SCALE", "-2", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
  unsetenv("TMARK_BENCH_SCALE");
}

}  // namespace
}  // namespace tmark::eval
