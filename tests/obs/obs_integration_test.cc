// End-to-end check that TMarkClassifier::Fit emits the documented
// telemetry (docs/OBSERVABILITY.md): one tmark.fit root span with one
// tmark.fit.class child per class, residual series matching Traces(), and
// the per-phase timing histograms.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "tmark/core/tmark.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/trace.h"

namespace tmark {
namespace {

const std::string* FindField(const obs::SpanNode& span,
                             std::string_view key) {
  for (const auto& [k, v] : span.fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

const obs::HistogramSnapshot* FindHistogram(
    const obs::MetricsSnapshot& snap, std::string_view name) {
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Instance().Reset();
    obs::Tracer::Instance().Reset();
    obs::Registry::Instance().set_enabled(true);
    obs::Tracer::Instance().set_enabled(true);
  }
  void TearDown() override {
    obs::Registry::Instance().set_enabled(false);
    obs::Tracer::Instance().set_enabled(false);
    obs::Registry::Instance().Reset();
    obs::Tracer::Instance().Reset();
  }
};

TEST_F(ObsIntegrationTest, FitEmitsOneSpanPerClassWithMatchingResiduals) {
  const hin::Hin hin = datasets::MakePaperExample();
  core::TMarkConfig config;
  config.fit_mode = core::FitMode::kPerClass;
  core::TMarkClassifier clf(config);
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  const auto& traces = clf.Traces();
  ASSERT_EQ(traces.size(), hin.num_classes());

  const std::vector<obs::SpanNode> roots =
      obs::Tracer::Instance().TakeFinished();
  ASSERT_EQ(roots.size(), 1u);
  const obs::SpanNode& fit = roots[0];
  EXPECT_EQ(fit.name, "tmark.fit");
  ASSERT_NE(FindField(fit, "classes"), nullptr);
  EXPECT_EQ(*FindField(fit, "classes"),
            std::to_string(hin.num_classes()));

  // The build spans of the transition tensors and the feature walk nest
  // under the fit, followed by exactly one span per class.
  std::vector<const obs::SpanNode*> class_spans;
  bool saw_tensor_build = false;
  bool saw_similarity_build = false;
  for (const obs::SpanNode& child : fit.children) {
    if (child.name == "tmark.fit.class") class_spans.push_back(&child);
    if (child.name == "tensor.transition.build") saw_tensor_build = true;
    if (child.name == "hin.similarity.build") saw_similarity_build = true;
  }
  EXPECT_TRUE(saw_tensor_build);
  EXPECT_TRUE(saw_similarity_build);
  ASSERT_EQ(class_spans.size(), hin.num_classes());

  for (std::size_t c = 0; c < class_spans.size(); ++c) {
    const obs::SpanNode& span = *class_spans[c];
    const std::string* cls = FindField(span, "class");
    const std::string* iterations = FindField(span, "iterations");
    const std::string* converged = FindField(span, "converged");
    ASSERT_NE(cls, nullptr);
    ASSERT_NE(iterations, nullptr);
    ASSERT_NE(converged, nullptr);
    EXPECT_EQ(*cls, std::to_string(c));
    EXPECT_EQ(*iterations, std::to_string(traces[c].residuals.size()));
    EXPECT_EQ(*converged, traces[c].converged ? "true" : "false");
  }
}

TEST_F(ObsIntegrationTest, ResidualSeriesMatchTracesExactly) {
  const hin::Hin hin = datasets::MakePaperExample();
  core::TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  const auto& traces = clf.Traces();

  const obs::MetricsSnapshot snap = obs::Registry::Instance().Snapshot();
  std::size_t total_iterations = 0;
  for (std::size_t c = 0; c < traces.size(); ++c) {
    total_iterations += traces[c].residuals.size();
    const std::string name = "tmark.fit.residual.c" + std::to_string(c);
    const auto it =
        std::find_if(snap.series.begin(), snap.series.end(),
                     [&name](const obs::SeriesSnapshot& s) {
                       return s.name == name;
                     });
    ASSERT_NE(it, snap.series.end()) << "missing series " << name;
    ASSERT_EQ(it->values.size(), traces[c].residuals.size());
    for (std::size_t t = 0; t < it->values.size(); ++t) {
      EXPECT_DOUBLE_EQ(it->values[t], traces[c].residuals[t]);
    }
  }

  const auto counter_it =
      std::find_if(snap.counters.begin(), snap.counters.end(),
                   [](const obs::CounterSnapshot& c) {
                     return c.name == "tmark.fit.iterations";
                   });
  ASSERT_NE(counter_it, snap.counters.end());
  EXPECT_EQ(counter_it->value,
            static_cast<std::int64_t>(total_iterations));
}

TEST_F(ObsIntegrationTest, PerPhaseTimingHistogramsArePopulated) {
  const hin::Hin hin = datasets::MakePaperExample();
  core::TMarkConfig config;
  config.fit_mode = core::FitMode::kPerClass;
  core::TMarkClassifier clf(config);
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  const auto& traces = clf.Traces();

  std::uint64_t total_iterations = 0;
  std::uint64_t ica_iterations = 0;
  for (const core::ConvergenceTrace& trace : traces) {
    total_iterations += trace.residuals.size();
    // The ICA restart update runs from iteration 3 onward (t > 2).
    if (trace.residuals.size() > 2) {
      ica_iterations += trace.residuals.size() - 2;
    }
  }

  const obs::MetricsSnapshot snap = obs::Registry::Instance().Snapshot();
  for (const char* name :
       {"tmark.fit.phase.tensor_product_ms", "tmark.fit.phase.feature_walk_ms",
        "tmark.fit.phase.z_update_ms"}) {
    const obs::HistogramSnapshot* h = FindHistogram(snap, name);
    ASSERT_NE(h, nullptr) << "missing histogram " << name;
    EXPECT_EQ(h->count, total_iterations) << name;
  }
  const obs::HistogramSnapshot* ica =
      FindHistogram(snap, "tmark.fit.phase.ica_update_ms");
  ASSERT_NE(ica, nullptr);
  EXPECT_EQ(ica->count, ica_iterations);

  const obs::HistogramSnapshot* total =
      FindHistogram(snap, "tmark.fit.total_ms");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count, 1u);
  const obs::HistogramSnapshot* per_class =
      FindHistogram(snap, "tmark.fit.class_ms");
  ASSERT_NE(per_class, nullptr);
  EXPECT_EQ(per_class->count, traces.size());
}

TEST_F(ObsIntegrationTest, BatchedFitEmitsPanelSpanAndSharedPhaseTimers) {
  const hin::Hin hin = datasets::MakePaperExample();
  core::TMarkClassifier clf;  // default engine is batched
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  const auto& traces = clf.Traces();

  const std::vector<obs::SpanNode> roots =
      obs::Tracer::Instance().TakeFinished();
  ASSERT_EQ(roots.size(), 1u);
  const obs::SpanNode& fit = roots[0];
  EXPECT_EQ(fit.name, "tmark.fit");
  ASSERT_NE(FindField(fit, "fit_mode"), nullptr);
  EXPECT_EQ(*FindField(fit, "fit_mode"), "batched");

  // One panel span instead of the per-class spans; its iteration count is
  // the longest class trace (columns retire early, the panel runs on).
  const obs::SpanNode* batched = nullptr;
  for (const obs::SpanNode& child : fit.children) {
    if (child.name == "tmark.fit.batched") batched = &child;
    EXPECT_NE(child.name, "tmark.fit.class");
  }
  ASSERT_NE(batched, nullptr);
  std::size_t longest = 0;
  std::size_t total_iterations = 0;
  for (const core::ConvergenceTrace& trace : traces) {
    longest = std::max(longest, trace.residuals.size());
    total_iterations += trace.residuals.size();
  }
  ASSERT_NE(FindField(*batched, "iterations"), nullptr);
  EXPECT_EQ(*FindField(*batched, "iterations"), std::to_string(longest));

  // Residual series and the iteration counter match the traces exactly,
  // and the phase histograms see one observation per panel iteration.
  const obs::MetricsSnapshot snap = obs::Registry::Instance().Snapshot();
  for (std::size_t c = 0; c < traces.size(); ++c) {
    const std::string name = "tmark.fit.residual.c" + std::to_string(c);
    const auto it =
        std::find_if(snap.series.begin(), snap.series.end(),
                     [&name](const obs::SeriesSnapshot& s) {
                       return s.name == name;
                     });
    ASSERT_NE(it, snap.series.end()) << "missing series " << name;
    ASSERT_EQ(it->values.size(), traces[c].residuals.size());
    for (std::size_t t = 0; t < it->values.size(); ++t) {
      EXPECT_DOUBLE_EQ(it->values[t], traces[c].residuals[t]);
    }
  }
  const auto counter_it =
      std::find_if(snap.counters.begin(), snap.counters.end(),
                   [](const obs::CounterSnapshot& c) {
                     return c.name == "tmark.fit.iterations";
                   });
  ASSERT_NE(counter_it, snap.counters.end());
  EXPECT_EQ(counter_it->value,
            static_cast<std::int64_t>(total_iterations));
  for (const char* name :
       {"tmark.fit.phase.tensor_product_ms", "tmark.fit.phase.feature_walk_ms",
        "tmark.fit.phase.z_update_ms"}) {
    const obs::HistogramSnapshot* h = FindHistogram(snap, name);
    ASSERT_NE(h, nullptr) << "missing histogram " << name;
    EXPECT_EQ(h->count, longest) << name;
  }
}

TEST_F(ObsIntegrationTest, DisabledObsLeavesFitSilent) {
  obs::Registry::Instance().set_enabled(false);
  obs::Tracer::Instance().set_enabled(false);
  const hin::Hin hin = datasets::MakePaperExample();
  core::TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  EXPECT_TRUE(obs::Tracer::Instance().FinishedCopy().empty());
  const obs::MetricsSnapshot snap = obs::Registry::Instance().Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.series.empty());
}

}  // namespace
}  // namespace tmark
