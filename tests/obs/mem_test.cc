// Tests for the peak-RSS reading (obs/mem.h). These run on Linux where
// /proc/self/status exists, so the happy path is asserted directly; the
// typed-Status fallbacks are covered by the contract that ReadPeakRssBytes
// never throws and never returns 0 on success.

#include <gtest/gtest.h>

#include <cstdint>

#include "tmark/obs/mem.h"
#include "tmark/obs/metrics.h"

namespace tmark::obs {
namespace {

TEST(MemTest, ReadPeakRssReturnsPlausibleValue) {
  const Result<std::uint64_t> rss = ReadPeakRssBytes();
  ASSERT_TRUE(rss.ok()) << rss.status().ToString();
  // Any live process has paged in more than a megabyte and (in these tests)
  // far less than a terabyte; the bounds catch kB-vs-bytes unit slips.
  EXPECT_GT(*rss, 1ull << 20);
  EXPECT_LT(*rss, 1ull << 40);
}

TEST(MemTest, RecordPeakRssIsGatedOnMetrics) {
  Registry::Instance().set_enabled(false);
  Registry::Instance().Reset();
  RecordPeakRss();
  EXPECT_TRUE(Registry::Instance().Snapshot().gauges.empty());

  Registry::Instance().set_enabled(true);
  RecordPeakRss();
  const MetricsSnapshot snap = Registry::Instance().Snapshot();
  bool found = false;
  for (const GaugeSnapshot& gauge : snap.gauges) {
    if (gauge.name != "mem.peak_rss_bytes") continue;
    found = true;
    EXPECT_GT(gauge.value, static_cast<double>(1ull << 20));
  }
  EXPECT_TRUE(found);
  Registry::Instance().set_enabled(false);
  Registry::Instance().Reset();
}

}  // namespace
}  // namespace tmark::obs
