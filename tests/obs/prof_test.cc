#include "tmark/obs/prof.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tmark/parallel/parallel_for.h"
#include "tmark/parallel/thread_pool.h"

namespace tmark::obs::prof {
namespace {

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Instance().set_enabled(false);
    Profiler::Instance().Reset();
  }
  void TearDown() override {
    Profiler::Instance().set_enabled(false);
    Profiler::Instance().Reset();
    parallel::SetNumThreads(0);
  }
};

const RegionTotals* FindRegion(const ProfileSnapshot& snapshot,
                               const std::string& name) {
  for (const RegionTotals& region : snapshot.regions) {
    if (region.name == name) return &region;
  }
  return nullptr;
}

TEST_F(ProfTest, CounterNamesAreStable) {
  EXPECT_EQ(CounterName(0), "cycles");
  EXPECT_EQ(CounterName(1), "instructions");
  EXPECT_EQ(CounterName(2), "llc_misses");
  EXPECT_EQ(CounterName(3), "branch_misses");
}

TEST_F(ProfTest, DisabledRegionIsInert) {
  {
    ProfRegion region("prof_test.inert");
    EXPECT_FALSE(region.active());
  }
  EXPECT_TRUE(Profiler::Instance().Snapshot().regions.empty());
}

TEST_F(ProfTest, EnabledRegionsAccumulateCallsAndTime) {
  Profiler::Instance().set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    TMARK_PROF_REGION("prof_test.outer");
    TMARK_PROF_REGION("prof_test.inner");
  }
  Profiler::Instance().set_enabled(false);

  const ProfileSnapshot snapshot = Profiler::Instance().Snapshot();
  const RegionTotals* outer = FindRegion(snapshot, "prof_test.outer");
  const RegionTotals* inner = FindRegion(snapshot, "prof_test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls, 3u);
  EXPECT_EQ(inner->calls, 3u);
  // The outer region encloses the inner one, so its wall time dominates.
  EXPECT_GE(outer->time_ns, inner->time_ns);
  EXPECT_GE(outer->time_ms(), 0.0);
}

TEST_F(ProfTest, SnapshotRegionsAreSortedByName) {
  Profiler::Instance().set_enabled(true);
  { TMARK_PROF_REGION("prof_test.zeta"); }
  { TMARK_PROF_REGION("prof_test.alpha"); }
  { TMARK_PROF_REGION("prof_test.mid"); }
  Profiler::Instance().set_enabled(false);

  const ProfileSnapshot snapshot = Profiler::Instance().Snapshot();
  ASSERT_GE(snapshot.regions.size(), 3u);
  for (std::size_t i = 1; i < snapshot.regions.size(); ++i) {
    EXPECT_LT(snapshot.regions[i - 1].name, snapshot.regions[i].name);
  }
}

TEST_F(ProfTest, ResetClearsAccumulatedRegions) {
  Profiler::Instance().set_enabled(true);
  { TMARK_PROF_REGION("prof_test.reset_me"); }
  Profiler::Instance().set_enabled(false);
  ASSERT_FALSE(Profiler::Instance().Snapshot().regions.empty());
  Profiler::Instance().Reset();
  EXPECT_TRUE(Profiler::Instance().Snapshot().regions.empty());
}

// The determinism contract of docs/OBSERVABILITY.md: all accumulators are
// integers merged in a fixed (ordinal, registration) order, so the merged
// snapshot is identical no matter how the OS schedules the workers. Runs
// under TMARK_SANITIZE=thread via the `sanitize` ctest label.
TEST_F(ProfTest, MergedCountsAreIdenticalAcrossThreadCounts) {
  constexpr std::size_t kItems = 64;
  std::vector<std::string> names[2];
  std::vector<std::uint64_t> calls[2];
  const std::size_t thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    parallel::SetNumThreads(thread_counts[run]);
    Profiler::Instance().Reset();
    Profiler::Instance().set_enabled(true);
    parallel::ParallelFor(kItems, 1, [](std::size_t i) {
      TMARK_PROF_REGION("prof_test.parallel");
      if (i % 2 == 0) {
        TMARK_PROF_REGION("prof_test.parallel_even");
      }
    });
    Profiler::Instance().set_enabled(false);
    const ProfileSnapshot snapshot = Profiler::Instance().Snapshot();
    for (const RegionTotals& region : snapshot.regions) {
      names[run].push_back(region.name);
      calls[run].push_back(region.calls);
    }
  }
  EXPECT_EQ(names[0], names[1]);
  EXPECT_EQ(calls[0], calls[1]);
  const ProfileSnapshot last = Profiler::Instance().Snapshot();
  const RegionTotals* all = FindRegion(last, "prof_test.parallel");
  const RegionTotals* even = FindRegion(last, "prof_test.parallel_even");
  ASSERT_NE(all, nullptr);
  ASSERT_NE(even, nullptr);
  EXPECT_EQ(all->calls, kItems);
  EXPECT_EQ(even->calls, kItems / 2);
}

TEST_F(ProfTest, SampleThreadCountersReturnsFalseWhenDisabled) {
  std::array<std::uint64_t, kNumCounters> out{};
  EXPECT_FALSE(SampleThreadCounters(&out));
}

TEST_F(ProfTest, CounterStatusIsTypedAndConsistent) {
  Profiler::Instance().set_enabled(true);
  const Status status = Profiler::Instance().counters_status();
  const ProfileSnapshot snapshot = Profiler::Instance().Snapshot();
  if (Profiler::Instance().counters_available()) {
    EXPECT_TRUE(status.ok()) << status.ToString();
    EXPECT_TRUE(snapshot.counters_available);
  } else {
    // Time-only fallback: the reason must be a typed, non-empty status
    // (e.g. perf_event_open refused), never a silent empty string.
    EXPECT_FALSE(status.ok());
    EXPECT_FALSE(snapshot.counters_available);
    EXPECT_FALSE(snapshot.counter_status.empty());
    EXPECT_EQ(snapshot.counter_status, status.ToString());
  }
}

TEST_F(ProfTest, MeasureDisabledRegionCostRestoresEnabledState) {
  const double cost_disabled = MeasureDisabledRegionCostNs(10'000);
  EXPECT_GT(cost_disabled, 0.0);
  EXPECT_FALSE(ProfilingEnabled());

  Profiler::Instance().set_enabled(true);
  const double cost_enabled_before = MeasureDisabledRegionCostNs(10'000);
  EXPECT_GT(cost_enabled_before, 0.0);
  // The measurement forces profiling off internally, then restores it.
  EXPECT_TRUE(ProfilingEnabled());
  // The probe regions ran disabled, so they accumulate nothing.
  EXPECT_EQ(FindRegion(Profiler::Instance().Snapshot(),
                       "obs.prof.overhead_probe"),
            nullptr);
}

// ---------------------------------------------------------------------------
// ComputeAttribution: exclusive-time math over a synthetic span forest.

SpanNode MakeSpan(std::string name, double start_ms, double duration_ms) {
  SpanNode node;
  node.name = std::move(name);
  node.start_ms = start_ms;
  node.duration_ms = duration_ms;
  return node;
}

const AttributionRow* FindRow(const std::vector<AttributionRow>& rows,
                              const std::string& name) {
  for (const AttributionRow& row : rows) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

TEST(AttributionTest, SelfTimeIsDurationMinusDirectChildren) {
  // root [0, 10ms): a [1, 5) and b [5, 8), b contains c [6, 7).
  SpanNode root = MakeSpan("root", 0.0, 10.0);
  root.children.push_back(MakeSpan("a", 1.0, 4.0));
  SpanNode b = MakeSpan("b", 5.0, 3.0);
  b.children.push_back(MakeSpan("c", 6.0, 1.0));
  root.children.push_back(std::move(b));

  const std::vector<AttributionRow> rows = ComputeAttribution({root});
  ASSERT_EQ(rows.size(), 4u);

  const AttributionRow* r = FindRow(rows, "root");
  const AttributionRow* a = FindRow(rows, "a");
  const AttributionRow* bb = FindRow(rows, "b");
  const AttributionRow* c = FindRow(rows, "c");
  ASSERT_NE(r, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(bb, nullptr);
  ASSERT_NE(c, nullptr);

  EXPECT_DOUBLE_EQ(r->total_ms, 10.0);
  EXPECT_DOUBLE_EQ(r->self_ms, 3.0);  // 10 - (4 + 3)
  EXPECT_DOUBLE_EQ(a->total_ms, 4.0);
  EXPECT_DOUBLE_EQ(a->self_ms, 4.0);  // leaf
  EXPECT_DOUBLE_EQ(bb->total_ms, 3.0);
  EXPECT_DOUBLE_EQ(bb->self_ms, 2.0);  // 3 - 1
  EXPECT_DOUBLE_EQ(c->self_ms, 1.0);

  // Conservation: self times of all rows sum to the root duration.
  double self_sum = 0.0;
  for (const AttributionRow& row : rows) self_sum += row.self_ms;
  EXPECT_NEAR(self_sum, 10.0, 1e-9);

  // Sorted by descending self_ms: a(4) > root(3) > b(2) > c(1).
  EXPECT_EQ(rows[0].name, "a");
  EXPECT_EQ(rows[1].name, "root");
  EXPECT_EQ(rows[2].name, "b");
  EXPECT_EQ(rows[3].name, "c");
}

TEST(AttributionTest, RepeatedNamesAggregateAcrossTheForest) {
  SpanNode first = MakeSpan("fit", 0.0, 2.0);
  first.children.push_back(MakeSpan("kernel", 0.0, 1.0));
  SpanNode second = MakeSpan("fit", 5.0, 4.0);
  second.children.push_back(MakeSpan("kernel", 5.0, 3.0));

  const std::vector<AttributionRow> rows =
      ComputeAttribution({first, second});
  const AttributionRow* fit = FindRow(rows, "fit");
  const AttributionRow* kernel = FindRow(rows, "kernel");
  ASSERT_NE(fit, nullptr);
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(fit->count, 2u);
  EXPECT_EQ(kernel->count, 2u);
  EXPECT_DOUBLE_EQ(fit->total_ms, 6.0);
  EXPECT_DOUBLE_EQ(fit->self_ms, 2.0);
  EXPECT_DOUBLE_EQ(kernel->total_ms, 4.0);
  EXPECT_DOUBLE_EQ(kernel->self_ms, 4.0);
}

TEST(AttributionTest, NegativeExclusiveTimeClampsToZero) {
  // Clock jitter can make a child's recorded duration exceed its parent's;
  // the exclusive time must clamp at zero rather than go negative.
  SpanNode parent = MakeSpan("parent", 0.0, 1.0);
  parent.children.push_back(MakeSpan("child", 0.0, 1.5));
  const std::vector<AttributionRow> rows = ComputeAttribution({parent});
  const AttributionRow* p = FindRow(rows, "parent");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->self_ms, 0.0);
}

TEST(AttributionTest, CounterColumnsFollowTheSameSplit) {
  SpanNode root = MakeSpan("root", 0.0, 10.0);
  root.has_counters = true;
  root.counters = {1000, 2000, 30, 40};
  SpanNode child = MakeSpan("child", 1.0, 4.0);
  child.has_counters = true;
  child.counters = {400, 800, 10, 15};
  root.children.push_back(std::move(child));

  const std::vector<AttributionRow> rows = ComputeAttribution({root});
  const AttributionRow* r = FindRow(rows, "root");
  const AttributionRow* c = FindRow(rows, "child");
  ASSERT_NE(r, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(r->has_counters);
  EXPECT_TRUE(c->has_counters);
  EXPECT_EQ(r->total_counters[0], 1000u);
  EXPECT_EQ(r->self_counters[0], 600u);  // 1000 - 400
  EXPECT_EQ(r->self_counters[3], 25u);   // 40 - 15
  EXPECT_EQ(c->total_counters[1], 800u);
  EXPECT_EQ(c->self_counters[1], 800u);  // leaf
}

TEST(AttributionTest, MissingChildCountersDropTheParentCounterColumns) {
  SpanNode root = MakeSpan("root", 0.0, 10.0);
  root.has_counters = true;
  root.counters = {1000, 2000, 30, 40};
  root.children.push_back(MakeSpan("child", 1.0, 4.0));  // no counters

  const std::vector<AttributionRow> rows = ComputeAttribution({root});
  const AttributionRow* r = FindRow(rows, "root");
  ASSERT_NE(r, nullptr);
  // Exclusive counters cannot be computed without the child's deltas, so
  // the row reports time only.
  EXPECT_FALSE(r->has_counters);
}

TEST(AttributionTest, EmptyForestYieldsNoRows) {
  EXPECT_TRUE(ComputeAttribution({}).empty());
}

}  // namespace
}  // namespace tmark::obs::prof
