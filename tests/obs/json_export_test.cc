#include "tmark/obs/json_export.h"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include "tmark/obs/metrics.h"
#include "tmark/obs/trace.h"

namespace tmark::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON syntax validator (RFC 8259 subset) used to
// prove exporter output is well-formed without pulling in a JSON library.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view doc) : doc_(doc) {}

  bool Valid() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == doc_.size();
  }

 private:
  bool ParseValue() {
    if (pos_ >= doc_.size()) return false;
    switch (doc_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < doc_.size()) {
      const unsigned char c = static_cast<unsigned char>(doc_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= doc_.size()) return false;
        const char esc = doc_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= doc_.size() ||
                !std::isxdigit(static_cast<unsigned char>(doc_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view lit) {
    if (doc_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < doc_.size() ? doc_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < doc_.size() &&
           (doc_[pos_] == ' ' || doc_[pos_] == '\t' || doc_[pos_] == '\n' ||
            doc_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
};

bool IsValidJson(std::string_view doc) { return JsonValidator(doc).Valid(); }

// ---------------------------------------------------------------------------

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string_view("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(JsonEscape("\x01\x1f"), "\\u0001\\u001f");
  // UTF-8 multi-byte sequences pass through untouched.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriterTest, WritesNestedDocumentWithCommas) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("name").Value("x");
  writer.Key("items").BeginArray();
  writer.Value(std::int64_t{1});
  writer.Value(2.5);
  writer.Value(true);
  writer.Null();
  writer.EndArray();
  writer.Key("empty").BeginObject().EndObject();
  writer.EndObject();
  const std::string doc = writer.TakeString();
  EXPECT_EQ(doc, R"({"name":"x","items":[1,2.5,true,null],"empty":{}})");
  EXPECT_TRUE(IsValidJson(doc));
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Value(std::numeric_limits<double>::infinity());
  writer.Value(-std::numeric_limits<double>::infinity());
  writer.Value(std::numeric_limits<double>::quiet_NaN());
  writer.EndArray();
  const std::string doc = writer.TakeString();
  EXPECT_EQ(doc, "[null,null,null]");
  EXPECT_TRUE(IsValidJson(doc));
}

TEST(JsonWriterTest, EscapesKeysAndValues) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("weird\"key\n").Value("weird\\value\t");
  writer.EndObject();
  const std::string doc = writer.TakeString();
  EXPECT_EQ(doc, "{\"weird\\\"key\\n\":\"weird\\\\value\\t\"}");
  EXPECT_TRUE(IsValidJson(doc));
}

TEST(JsonExportTest, MetricsSnapshotRoundTripsThroughValidator) {
  Registry& registry = Registry::Instance();
  registry.Reset();
  registry.set_enabled(true);
  IncrCounter("json.counter", 7);
  IncrCounter("json.counter\"quoted\"", 1);  // hostile metric name
  SetGauge("json.gauge", -0.125);
  ObserveHistogram("json.hist", 3.5);
  ObserveHistogram("json.hist", 4.5);
  AppendSeries("json.series", 0.25);
  AppendSeries("json.series", 0.125);
  registry.set_enabled(false);

  const std::string doc = MetricsToJson(registry.Snapshot());
  registry.Reset();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  // Spot-check content: the histogram +inf bucket must serialize as null,
  // and the hostile name must arrive escaped.
  EXPECT_NE(doc.find("\"json.counter\\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(doc.find("\"le\":null"), std::string::npos);
  EXPECT_NE(doc.find("\"total_count\":2"), std::string::npos);
}

TEST(JsonExportTest, SpanTreeRoundTripsThroughValidator) {
  Tracer& tracer = Tracer::Instance();
  tracer.Reset();
  tracer.set_enabled(true);
  {
    TraceSpan root("json.root");
    root.AddField("note", "has \"quotes\" and\nnewline");
    TraceSpan child("json.child");
    child.AddField("n", std::size_t{3});
  }
  tracer.set_enabled(false);

  const std::string doc = SpansToJson(tracer.TakeFinished());
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  EXPECT_NE(doc.find("\"json.root\""), std::string::npos);
  EXPECT_NE(doc.find("\"json.child\""), std::string::npos);
  EXPECT_NE(doc.find("has \\\"quotes\\\" and\\nnewline"),
            std::string::npos);
}

TEST(JsonExportTest, EmptySnapshotsAreValidDocuments) {
  EXPECT_TRUE(IsValidJson(MetricsToJson(MetricsSnapshot{})));
  EXPECT_TRUE(IsValidJson(SpansToJson({})));
}

TEST(JsonExportTest, WriteTextFileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/tmark_json_export_test.json";
  ASSERT_TRUE(WriteTextFile(path, "{\"ok\":true}"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"ok\":true}");
  EXPECT_FALSE(WriteTextFile("/nonexistent-dir/x/y.json", "{}"));
}

}  // namespace
}  // namespace tmark::obs
