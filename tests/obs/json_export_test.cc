#include "tmark/obs/json_export.h"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include "tmark/obs/metrics.h"
#include "tmark/obs/trace.h"

namespace tmark::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON syntax validator (RFC 8259 subset) used to
// prove exporter output is well-formed without pulling in a JSON library.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view doc) : doc_(doc) {}

  bool Valid() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == doc_.size();
  }

 private:
  bool ParseValue() {
    if (pos_ >= doc_.size()) return false;
    switch (doc_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < doc_.size()) {
      const unsigned char c = static_cast<unsigned char>(doc_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= doc_.size()) return false;
        const char esc = doc_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= doc_.size() ||
                !std::isxdigit(static_cast<unsigned char>(doc_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view lit) {
    if (doc_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < doc_.size() ? doc_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < doc_.size() &&
           (doc_[pos_] == ' ' || doc_[pos_] == '\t' || doc_[pos_] == '\n' ||
            doc_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
};

bool IsValidJson(std::string_view doc) { return JsonValidator(doc).Valid(); }

// ---------------------------------------------------------------------------

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string_view("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(JsonEscape("\x01\x1f"), "\\u0001\\u001f");
  // UTF-8 multi-byte sequences pass through untouched.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriterTest, WritesNestedDocumentWithCommas) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("name").Value("x");
  writer.Key("items").BeginArray();
  writer.Value(std::int64_t{1});
  writer.Value(2.5);
  writer.Value(true);
  writer.Null();
  writer.EndArray();
  writer.Key("empty").BeginObject().EndObject();
  writer.EndObject();
  const std::string doc = writer.TakeString();
  EXPECT_EQ(doc, R"({"name":"x","items":[1,2.5,true,null],"empty":{}})");
  EXPECT_TRUE(IsValidJson(doc));
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Value(std::numeric_limits<double>::infinity());
  writer.Value(-std::numeric_limits<double>::infinity());
  writer.Value(std::numeric_limits<double>::quiet_NaN());
  writer.EndArray();
  const std::string doc = writer.TakeString();
  EXPECT_EQ(doc, "[null,null,null]");
  EXPECT_TRUE(IsValidJson(doc));
}

TEST(JsonWriterTest, EscapesKeysAndValues) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("weird\"key\n").Value("weird\\value\t");
  writer.EndObject();
  const std::string doc = writer.TakeString();
  EXPECT_EQ(doc, "{\"weird\\\"key\\n\":\"weird\\\\value\\t\"}");
  EXPECT_TRUE(IsValidJson(doc));
}

TEST(JsonExportTest, MetricsSnapshotRoundTripsThroughValidator) {
  Registry& registry = Registry::Instance();
  registry.Reset();
  registry.set_enabled(true);
  IncrCounter("json.counter", 7);
  IncrCounter("json.counter\"quoted\"", 1);  // hostile metric name
  SetGauge("json.gauge", -0.125);
  ObserveHistogram("json.hist", 3.5);
  ObserveHistogram("json.hist", 4.5);
  AppendSeries("json.series", 0.25);
  AppendSeries("json.series", 0.125);
  registry.set_enabled(false);

  const std::string doc = MetricsToJson(registry.Snapshot());
  registry.Reset();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  // Spot-check content: the histogram +inf bucket must serialize as null,
  // and the hostile name must arrive escaped.
  EXPECT_NE(doc.find("\"json.counter\\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(doc.find("\"le\":null"), std::string::npos);
  EXPECT_NE(doc.find("\"total_count\":2"), std::string::npos);
}

TEST(JsonExportTest, SpanTreeRoundTripsThroughValidator) {
  Tracer& tracer = Tracer::Instance();
  tracer.Reset();
  tracer.set_enabled(true);
  {
    TraceSpan root("json.root");
    root.AddField("note", "has \"quotes\" and\nnewline");
    TraceSpan child("json.child");
    child.AddField("n", std::size_t{3});
  }
  tracer.set_enabled(false);

  const std::string doc = SpansToJson(tracer.TakeFinished());
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  EXPECT_NE(doc.find("\"json.root\""), std::string::npos);
  EXPECT_NE(doc.find("\"json.child\""), std::string::npos);
  EXPECT_NE(doc.find("has \\\"quotes\\\" and\\nnewline"),
            std::string::npos);
}

TEST(JsonExportTest, EmptySnapshotsAreValidDocuments) {
  EXPECT_TRUE(IsValidJson(MetricsToJson(MetricsSnapshot{})));
  EXPECT_TRUE(IsValidJson(SpansToJson({})));
}

TEST(JsonExportTest, HistogramExportCarriesMeanBetweenSumAndMin) {
  Registry& registry = Registry::Instance();
  registry.Reset();
  registry.set_enabled(true);
  ObserveHistogram("json.mean_hist", 2.0);
  ObserveHistogram("json.mean_hist", 4.0);
  registry.set_enabled(false);
  const std::string doc = MetricsToJson(registry.Snapshot());
  registry.Reset();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  EXPECT_NE(doc.find("\"mean\":3"), std::string::npos) << doc;
  // Key order is part of the schema consumed by scripts/check_bench_json.py.
  const std::size_t sum_pos = doc.find("\"sum\":");
  const std::size_t mean_pos = doc.find("\"mean\":");
  const std::size_t min_pos = doc.find("\"min\":");
  ASSERT_NE(sum_pos, std::string::npos);
  ASSERT_NE(mean_pos, std::string::npos);
  ASSERT_NE(min_pos, std::string::npos);
  EXPECT_LT(sum_pos, mean_pos);
  EXPECT_LT(mean_pos, min_pos);
}

TEST(JsonExportTest, SpanCountersExportWhenPresent) {
  SpanNode span;
  span.name = "counted";
  span.has_counters = true;
  span.counters = {10, 20, 3, 4};
  const std::string doc = SpansToJson({span});
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  EXPECT_NE(doc.find("\"counters\":{\"cycles\":10,\"instructions\":20,"
                     "\"llc_misses\":3,\"branch_misses\":4}"),
            std::string::npos)
      << doc;
  // And stays absent without counters.
  SpanNode plain;
  plain.name = "plain";
  EXPECT_EQ(SpansToJson({plain}).find("counters"), std::string::npos);
}

TEST(JsonExportTest, AttributionRowsRoundTripThroughValidator) {
  prof::AttributionRow timed;
  timed.name = "fit";
  timed.count = 2;
  timed.total_ms = 10.0;
  timed.self_ms = 4.0;
  prof::AttributionRow counted;
  counted.name = "kernel";
  counted.count = 8;
  counted.total_ms = 6.0;
  counted.self_ms = 6.0;
  counted.has_counters = true;
  counted.total_counters = {100, 200, 30, 40};
  counted.self_counters = {90, 180, 20, 30};

  JsonWriter writer;
  WriteAttribution(writer, {timed, counted});
  const std::string doc = writer.TakeString();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  EXPECT_NE(doc.find("\"name\":\"fit\""), std::string::npos);
  EXPECT_NE(doc.find("\"self_ms\":4"), std::string::npos);
  // Counter columns only on the row that has them.
  EXPECT_NE(doc.find("\"total_counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"self_counters\""), std::string::npos);
  EXPECT_EQ(doc.find("\"total_counters\""), doc.rfind("\"total_counters\""));
}

TEST(JsonExportTest, ProfileDocumentRoundTripsThroughValidator) {
  prof::ProfileSnapshot profile;
  profile.counters_available = false;
  profile.counter_status = "FAILED_PRECONDITION: perf unavailable";
  prof::RegionTotals region;
  region.name = "la.mk.matmul_panel";
  region.calls = 12;
  region.time_ns = 3'500'000;
  profile.regions.push_back(region);

  ProfileOverhead overhead;
  overhead.disabled_ns_per_region = 2.5;
  overhead.region_calls = 12;
  overhead.workload_ms = 100.0;

  const std::string doc =
      ProfileToJson("unit_test", 4, profile, {}, overhead);
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  EXPECT_NE(doc.find("\"schema\":\"tmark-profile-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters_available\":false"), std::string::npos);
  EXPECT_NE(doc.find("\"la.mk.matmul_panel\""), std::string::npos);
  EXPECT_NE(doc.find("\"estimated_disabled_overhead_pct\""),
            std::string::npos);

  // Unknown workload -> the overhead percentage is null, not garbage.
  overhead.workload_ms = 0.0;
  const std::string doc2 =
      ProfileToJson("unit_test", 4, profile, {}, overhead);
  EXPECT_TRUE(IsValidJson(doc2)) << doc2;
  EXPECT_NE(doc2.find("\"estimated_disabled_overhead_pct\":null"),
            std::string::npos)
      << doc2;
}

TEST(JsonExportTest, WriteTextFileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/tmark_json_export_test.json";
  ASSERT_TRUE(WriteTextFile(path, "{\"ok\":true}"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"ok\":true}");
  EXPECT_FALSE(WriteTextFile("/nonexistent-dir/x/y.json", "{}"));
}

}  // namespace
}  // namespace tmark::obs
