#include "tmark/obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tmark/obs/trace.h"

namespace tmark::obs {
namespace {

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ChromeTraceTest, EmptyForestIsAValidSkeleton) {
  const std::string doc = SpansToChromeTrace({});
  EXPECT_EQ(doc, R"({"displayTimeUnit":"ms","traceEvents":[]})");
}

TEST(ChromeTraceTest, EmitsOneCompleteEventPerSpanIncludingChildren) {
  SpanNode root;
  root.name = "fit";
  root.start_ms = 1.0;
  root.duration_ms = 10.0;
  SpanNode child;
  child.name = "kernel";
  child.start_ms = 2.0;
  child.duration_ms = 3.0;
  root.children.push_back(child);

  const std::string doc = SpansToChromeTrace({root});
  // Flattened: one "X" (complete) event per span, children included.
  EXPECT_EQ(CountOccurrences(doc, "\"ph\":\"X\""), 2u);
  EXPECT_NE(doc.find("\"name\":\"fit\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"kernel\""), std::string::npos);
  // Times convert ms -> us.
  EXPECT_NE(doc.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":10000"), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":2000"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":3000"), std::string::npos);
}

TEST(ChromeTraceTest, FieldsAndCountersLandInArgs) {
  SpanNode span;
  span.name = "annotated";
  span.fields.emplace_back("classes", "4");
  span.has_counters = true;
  span.counters = {111, 222, 33, 44};

  const std::string doc = SpansToChromeTrace({span});
  EXPECT_NE(doc.find("\"args\":{\"classes\":\"4\""), std::string::npos);
  EXPECT_NE(doc.find("\"cycles\":111"), std::string::npos);
  EXPECT_NE(doc.find("\"instructions\":222"), std::string::npos);
  EXPECT_NE(doc.find("\"llc_misses\":33"), std::string::npos);
  EXPECT_NE(doc.find("\"branch_misses\":44"), std::string::npos);
}

TEST(ChromeTraceTest, SpansWithoutCountersOmitCounterKeys) {
  SpanNode span;
  span.name = "plain";
  const std::string doc = SpansToChromeTrace({span});
  EXPECT_EQ(doc.find("cycles"), std::string::npos);
  EXPECT_NE(doc.find("\"args\":{}"), std::string::npos);
}

TEST(ChromeTraceTest, HostileSpanNamesAreEscaped) {
  SpanNode span;
  span.name = "weird\"name\n";
  const std::string doc = SpansToChromeTrace({span});
  EXPECT_NE(doc.find("weird\\\"name\\n"), std::string::npos);
}

}  // namespace
}  // namespace tmark::obs
