#include "tmark/obs/logging.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>

#include "tmark/common/status.h"
#include "tmark/obs/metrics.h"

namespace tmark::obs {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Instance().set_stderr_enabled(false);
    path_ = ::testing::TempDir() + "/tmark_logging_test.log";
    std::remove(path_.c_str());
    ASSERT_TRUE(Logger::Instance().set_sink_file(path_));
  }

  void TearDown() override {
    Logger::Instance().set_sink_file("");
    Logger::Instance().set_level(LogLevel::kInfo);
    Logger::Instance().set_stderr_enabled(true);
    std::remove(path_.c_str());
  }

  std::string SinkContents() const {
    std::ifstream in(path_);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  std::string path_;
};

TEST_F(LoggingTest, ParseLogLevelAcceptsAllSpellings) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
  EXPECT_FALSE(ParseLogLevel("").has_value());
}

TEST_F(LoggingTest, LevelFilteringSuppressesLowerSeverities) {
  Logger::Instance().set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::Instance().Enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::Instance().Enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::Instance().Enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::Instance().Enabled(LogLevel::kError));

  LogInfo("suppressed.event");
  LogWarn("visible.event");
  const std::string contents = SinkContents();
  EXPECT_EQ(contents.find("suppressed.event"), std::string::npos);
  EXPECT_NE(contents.find("visible.event"), std::string::npos);
  EXPECT_NE(contents.find("[WARN"), std::string::npos);
}

TEST_F(LoggingTest, OffLevelSilencesEverything) {
  Logger::Instance().set_level(LogLevel::kOff);
  LogError("silenced");
  EXPECT_EQ(SinkContents(), "");
}

TEST_F(LoggingTest, StructuredFieldsAreKeyValueFormatted) {
  Logger::Instance().set_level(LogLevel::kInfo);
  LogInfo("fit.done", {{"method", "T-Mark"},
                       {"accuracy", 0.935},
                       {"iterations", std::int64_t{12}},
                       {"converged", true}});
  const std::string contents = SinkContents();
  EXPECT_NE(contents.find("fit.done"), std::string::npos);
  EXPECT_NE(contents.find("method=T-Mark"), std::string::npos);
  EXPECT_NE(contents.find("accuracy=0.935"), std::string::npos);
  EXPECT_NE(contents.find("iterations=12"), std::string::npos);
  EXPECT_NE(contents.find("converged=true"), std::string::npos);
}

TEST_F(LoggingTest, ValuesWithSpacesOrQuotesAreQuoted) {
  Logger::Instance().set_level(LogLevel::kInfo);
  LogInfo("quoting", {{"msg", "two words"}, {"q", "has \"quote\""}});
  const std::string contents = SinkContents();
  EXPECT_NE(contents.find("msg=\"two words\""), std::string::npos);
  EXPECT_NE(contents.find("q=\"has \\\"quote\\\"\""), std::string::npos);
}

TEST_F(LoggingTest, EachWriteIsOneLine) {
  Logger::Instance().set_level(LogLevel::kInfo);
  LogInfo("first");
  LogInfo("second");
  const std::string contents = SinkContents();
  std::size_t lines = 0;
  for (char c : contents) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST_F(LoggingTest, SinkFileFailureKeepsLoggerUsable) {
  EXPECT_FALSE(
      Logger::Instance().set_sink_file("/nonexistent-dir/x/tmark.log"));
  Logger::Instance().set_level(LogLevel::kInfo);
  LogInfo("still.works");
  EXPECT_NE(SinkContents().find("still.works"), std::string::npos);
}

TEST_F(LoggingTest, OpenSinkFileReturnsTypedNotFoundOnFailure) {
  const Status status =
      Logger::Instance().OpenSinkFile("/nonexistent-dir/x/tmark.log");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.ToString().find("/nonexistent-dir/x/tmark.log"),
            std::string::npos);
  EXPECT_TRUE(Logger::Instance().OpenSinkFile(path_).ok());
  EXPECT_TRUE(Logger::Instance().OpenSinkFile("").ok());  // detach
}

TEST_F(LoggingTest, SinkOpenFailureBumpsFileErrorCounter) {
  Registry::Instance().Reset();
  Registry::Instance().set_enabled(true);
  EXPECT_FALSE(
      Logger::Instance().set_sink_file("/nonexistent-dir/x/tmark.log"));
  EXPECT_FALSE(
      Logger::Instance().set_sink_file("/nonexistent-dir/y/tmark.log"));
  Registry::Instance().set_enabled(false);
  // Every failure is counted, even though the stderr warning is one-shot.
  EXPECT_EQ(Registry::Instance().GetCounter("obs.log.file_errors").value(),
            2);
  Registry::Instance().Reset();
}

TEST_F(LoggingTest, SinkWriteFailureIsCountedAndLoggerRecovers) {
  // /dev/full accepts the open but fails every write with ENOSPC —
  // exactly the silent-drop scenario the counter exists for.
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  ASSERT_TRUE(Logger::Instance().set_sink_file("/dev/full"));
  Registry::Instance().Reset();
  Registry::Instance().set_enabled(true);
  Logger::Instance().set_level(LogLevel::kInfo);
  LogInfo("dropped.first");
  LogInfo("dropped.second");
  Registry::Instance().set_enabled(false);
  EXPECT_EQ(Registry::Instance().GetCounter("obs.log.file_errors").value(),
            2);
  Registry::Instance().Reset();
  // Re-pointing at a writable sink fully recovers.
  ASSERT_TRUE(Logger::Instance().set_sink_file(path_));
  LogInfo("recovered");
  EXPECT_NE(SinkContents().find("recovered"), std::string::npos);
}

}  // namespace
}  // namespace tmark::obs
