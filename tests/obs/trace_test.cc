#include "tmark/obs/trace.h"

#include <gtest/gtest.h>

#include "tmark/obs/metrics.h"

namespace tmark::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Reset();
    Tracer::Instance().set_enabled(true);
  }
  void TearDown() override {
    Tracer::Instance().set_enabled(false);
    Tracer::Instance().Reset();
  }
};

TEST_F(TraceTest, NestedSpansFormATreeInOpenOrder) {
  {
    TraceSpan root("root");
    {
      TraceSpan first("child.first");
      TraceSpan grandchild("grandchild");
    }
    TraceSpan second("child.second");
  }
  std::vector<SpanNode> spans = Tracer::Instance().TakeFinished();
  ASSERT_EQ(spans.size(), 1u);
  const SpanNode& root = spans[0];
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "child.first");
  EXPECT_EQ(root.children[1].name, "child.second");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "grandchild");
  EXPECT_TRUE(root.children[1].children.empty());
}

TEST_F(TraceTest, SiblingRootsFinishInCloseOrder) {
  { TraceSpan a("a"); }
  { TraceSpan b("b"); }
  std::vector<SpanNode> spans = Tracer::Instance().TakeFinished();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[1].name, "b");
}

TEST_F(TraceTest, SpanTimingIsMonotoneAndContainsChildren) {
  {
    TraceSpan root("root");
    TraceSpan child("child");
  }
  std::vector<SpanNode> spans = Tracer::Instance().TakeFinished();
  ASSERT_EQ(spans.size(), 1u);
  const SpanNode& root = spans[0];
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& child = root.children[0];
  EXPECT_GE(root.duration_ms, 0.0);
  EXPECT_GE(child.start_ms, root.start_ms);
  // Child closes before the parent, so it cannot outlast it.
  EXPECT_LE(child.start_ms + child.duration_ms,
            root.start_ms + root.duration_ms + 1e-6);
}

TEST_F(TraceTest, FieldsAreFormattedAndOrdered) {
  {
    TraceSpan span("fields");
    span.AddField("text", "value");
    span.AddField("count", std::size_t{42});
    span.AddField("flag", true);
  }
  std::vector<SpanNode> spans = Tracer::Instance().TakeFinished();
  ASSERT_EQ(spans.size(), 1u);
  const auto& fields = spans[0].fields;
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], (std::pair<std::string, std::string>{"text",
                                                            "value"}));
  EXPECT_EQ(fields[1], (std::pair<std::string, std::string>{"count", "42"}));
  EXPECT_EQ(fields[2], (std::pair<std::string, std::string>{"flag",
                                                            "true"}));
}

TEST_F(TraceTest, DisabledTracerMakesSpansInert) {
  Tracer::Instance().set_enabled(false);
  {
    TraceSpan span("inert");
    EXPECT_FALSE(span.active());
    span.AddField("ignored", "x");
  }
  EXPECT_TRUE(Tracer::Instance().TakeFinished().empty());
}

TEST_F(TraceTest, InactiveMiddleSpanDoesNotBreakNesting) {
  {
    TraceSpan outer("outer");
    Tracer::Instance().set_enabled(false);
    {
      TraceSpan skipped("skipped");  // inactive: opened while disabled
      Tracer::Instance().set_enabled(true);
      TraceSpan inner("inner");  // attaches to `outer`, not `skipped`
    }
  }
  std::vector<SpanNode> spans = Tracer::Instance().TakeFinished();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "outer");
  ASSERT_EQ(spans[0].children.size(), 1u);
  EXPECT_EQ(spans[0].children[0].name, "inner");
}

TEST_F(TraceTest, ResetDropsFinishedSpans) {
  { TraceSpan span("dropped"); }
  Tracer::Instance().Reset();
  EXPECT_TRUE(Tracer::Instance().TakeFinished().empty());
}

TEST_F(TraceTest, FinishedCopyDoesNotDrain) {
  { TraceSpan span("kept"); }
  EXPECT_EQ(Tracer::Instance().FinishedCopy().size(), 1u);
  EXPECT_EQ(Tracer::Instance().FinishedCopy().size(), 1u);
  EXPECT_EQ(Tracer::Instance().TakeFinished().size(), 1u);
  EXPECT_TRUE(Tracer::Instance().FinishedCopy().empty());
}

TEST_F(TraceTest, ScopedTimerFeedsHistogramWhenMetricsEnabled) {
  Registry::Instance().Reset();
  Registry::Instance().set_enabled(true);
  { ScopedTimer timer("trace_test.timer_ms"); }
  Registry::Instance().set_enabled(false);
  const HistogramSnapshot snap = Registry::Instance()
                                     .GetHistogram("trace_test.timer_ms")
                                     .Snapshot("trace_test.timer_ms");
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 0.0);
  Registry::Instance().Reset();
}

TEST_F(TraceTest, ScopedTimerIsInertWhenMetricsDisabled) {
  Registry::Instance().Reset();
  Registry::Instance().set_enabled(false);
  { ScopedTimer timer("trace_test.inert_ms"); }
  EXPECT_TRUE(Registry::Instance().Snapshot().histograms.empty());
}

}  // namespace
}  // namespace tmark::obs
