#include "tmark/obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "tmark/common/check.h"

namespace tmark::obs {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Instance().Reset();
    Registry::Instance().set_enabled(true);
  }
  void TearDown() override {
    Registry::Instance().set_enabled(false);
    Registry::Instance().Reset();
  }
};

TEST_F(RegistryTest, CounterIncrementsAndAccumulates) {
  Counter& c = Registry::Instance().GetCounter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  // Same name -> same counter.
  EXPECT_EQ(Registry::Instance().GetCounter("test.counter").value(), 42);
}

TEST_F(RegistryTest, GaugeIsLastWriteWins) {
  Gauge& g = Registry::Instance().GetGauge("test.gauge");
  g.Set(1.5);
  g.Set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST_F(RegistryTest, GatedHelpersNoOpWhileDisabled) {
  Registry::Instance().set_enabled(false);
  IncrCounter("gated.counter");
  SetGauge("gated.gauge", 7.0);
  ObserveHistogram("gated.histogram", 1.0);
  AppendSeries("gated.series", 1.0);
  const MetricsSnapshot snap = Registry::Instance().Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.series.empty());

  Registry::Instance().set_enabled(true);
  IncrCounter("gated.counter", 3);
  EXPECT_EQ(Registry::Instance().GetCounter("gated.counter").value(), 3);
}

TEST_F(RegistryTest, HistogramPercentilesInterpolateWithinBuckets) {
  // Deciles 10..100 with one observation per integer 1..100 make the
  // percentile estimates exact under linear interpolation.
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  Histogram& h = Registry::Instance().GetHistogram("test.hist", bounds);
  for (int v = 1; v <= 100; ++v) h.Observe(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.00), 100.0);

  const HistogramSnapshot snap = h.Snapshot("test.hist");
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.p50, 50.0);
  EXPECT_DOUBLE_EQ(snap.p95, 95.0);
  EXPECT_DOUBLE_EQ(snap.p99, 99.0);
  ASSERT_EQ(snap.buckets.size(), bounds.size() + 1);
  for (std::size_t b = 0; b < bounds.size(); ++b) {
    EXPECT_EQ(snap.buckets[b].count, 10u) << "bucket " << b;
  }
  EXPECT_EQ(snap.buckets.back().count, 0u);  // overflow
}

TEST_F(RegistryTest, HistogramSingleValueClampsAllPercentiles) {
  Histogram& h = Registry::Instance().GetHistogram("test.single");
  h.Observe(7.25);
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 7.25);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 7.25);
}

TEST_F(RegistryTest, HistogramOverflowBucketStaysWithinObservedRange) {
  Histogram& h =
      Registry::Instance().GetHistogram("test.overflow", {1.0});
  h.Observe(0.5);
  h.Observe(500.0);
  const double p99 = h.Percentile(0.99);
  EXPECT_GE(p99, 0.5);
  EXPECT_LE(p99, 500.0);
  const HistogramSnapshot snap = h.Snapshot("test.overflow");
  ASSERT_EQ(snap.buckets.size(), 2u);
  EXPECT_EQ(snap.buckets[0].count, 1u);
  EXPECT_EQ(snap.buckets[1].count, 1u);
}

TEST_F(RegistryTest, EmptyHistogramReportsZeros) {
  Histogram& h = Registry::Instance().GetHistogram("test.empty");
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  const HistogramSnapshot snap = h.Snapshot("test.empty");
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
}

TEST_F(RegistryTest, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({3.0, 1.0}), CheckError);
  EXPECT_THROW(Histogram({1.0, 1.0}), CheckError);
}

TEST_F(RegistryTest, SeriesKeepsOrderAndCapsStoredPoints) {
  Series& s = Registry::Instance().GetSeries("test.series");
  for (std::size_t i = 0; i < Series::kMaxPoints + 10; ++i) {
    s.Append(static_cast<double>(i));
  }
  const SeriesSnapshot snap = s.Snapshot("test.series");
  EXPECT_EQ(snap.total_count, Series::kMaxPoints + 10);
  ASSERT_EQ(snap.values.size(), Series::kMaxPoints);
  EXPECT_DOUBLE_EQ(snap.values.front(), 0.0);
  EXPECT_DOUBLE_EQ(snap.values.back(),
                   static_cast<double>(Series::kMaxPoints - 1));
}

TEST_F(RegistryTest, ResetDropsEveryMetric) {
  IncrCounter("reset.counter");
  SetGauge("reset.gauge", 1.0);
  ObserveHistogram("reset.histogram", 1.0);
  AppendSeries("reset.series", 1.0);
  EXPECT_FALSE(Registry::Instance().Snapshot().counters.empty());
  Registry::Instance().Reset();
  const MetricsSnapshot snap = Registry::Instance().Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.series.empty());
}

TEST_F(RegistryTest, SnapshotIsSortedByName) {
  IncrCounter("z.last");
  IncrCounter("a.first");
  IncrCounter("m.middle");
  const MetricsSnapshot snap = Registry::Instance().Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "m.middle");
  EXPECT_EQ(snap.counters[2].name, "z.last");
}

TEST_F(RegistryTest, ConcurrentIncrementsDoNotLoseUpdates) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        IncrCounter("test.concurrent");
        ObserveHistogram("test.concurrent_hist", 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(Registry::Instance().GetCounter("test.concurrent").value(),
            kThreads * kPerThread);
  EXPECT_EQ(Registry::Instance()
                .GetHistogram("test.concurrent_hist")
                .Snapshot("test.concurrent_hist")
                .count,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace tmark::obs
