// Steady-state allocation discipline: every hot-loop kernel of the fit
// engines — the Into variants, the multi-RHS panel kernels, and the fused
// panel passes — must allocate NOTHING once its outputs and workspace are
// warm. The fit loops call these kernels every iteration; a per-call
// allocation there is a perf bug this test turns into a failure.
//
// Mechanism: the test binary replaces global operator new/new[] with
// counting wrappers. Each kernel runs twice with the same caller-owned
// outputs/workspace; the first (cold) call may size buffers, the second
// (warm) call must leave the counter untouched. Not part of the `sanitize`
// label: sanitizer runs interpose their own allocator machinery.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "tmark/datasets/synthetic_hin.h"
#include "tmark/hin/feature_similarity.h"
#include "tmark/hin/hin.h"
#include "tmark/hin/label_vector.h"
#include "tmark/la/dense_matrix.h"
#include "tmark/la/panel.h"
#include "tmark/la/sparse_matrix.h"
#include "tmark/la/vector_ops.h"
#include "tmark/parallel/thread_pool.h"
#include "tmark/tensor/sparse_tensor3.h"
#include "tmark/tensor/transition_tensors.h"

namespace {
std::atomic<std::size_t> g_news{0};
}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tmark {
namespace {

constexpr std::size_t kNodes = 40;
constexpr std::size_t kRelations = 3;
constexpr std::size_t kVocab = 16;
constexpr std::size_t kWidth = 5;

/// Runs `fn` once cold (may size buffers), then returns the number of
/// operator-new calls its second, warm invocation made.
template <typename Fn>
std::size_t WarmAllocs(Fn&& fn) {
  fn();
  const std::size_t before = g_news.load(std::memory_order_relaxed);
  fn();
  return g_news.load(std::memory_order_relaxed) - before;
}

la::SparseMatrix MakeSparse(std::size_t rows, std::size_t cols,
                            std::size_t salt) {
  std::vector<la::Triplet> triplets;
  for (std::size_t r = 0; r < rows; ++r) {
    // A few entries per row; row (salt % rows) left empty so the dangling
    // paths of the downstream operators stay exercised.
    if (r == salt % rows) continue;
    for (std::size_t e = 0; e < 3; ++e) {
      const std::size_t c = (r * 7 + e * 5 + salt) % cols;
      triplets.push_back({static_cast<std::uint32_t>(r),
                          static_cast<std::uint32_t>(c),
                          1.0 + 0.25 * static_cast<double>((r + e) % 4)});
    }
  }
  return la::SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

tensor::SparseTensor3 MakeTensor() {
  std::vector<la::SparseMatrix> slices;
  for (std::size_t k = 0; k < kRelations; ++k) {
    slices.push_back(MakeSparse(kNodes, kNodes, 3 + k));
  }
  return tensor::SparseTensor3::FromSlices(std::move(slices));
}

la::Vector MakeProb(std::size_t n, std::size_t salt) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 0.01 + static_cast<double>((i * 13 + salt) % 17);
  }
  la::NormalizeL1(&v);
  return v;
}

la::DenseMatrix MakeProbPanel(std::size_t rows, std::size_t width,
                              std::size_t salt) {
  la::DenseMatrix p(rows, width);
  for (std::size_t c = 0; c < width; ++c) {
    const la::Vector v = MakeProb(rows, salt + c);
    for (std::size_t r = 0; r < rows; ++r) p.At(r, c) = v[r];
  }
  return p;
}

struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::SetNumThreads(0); }
};

TEST(SteadyStateAllocTest, SparseMatrixKernelsAllocateNothingWhenWarm) {
  ThreadCountGuard guard;
  parallel::SetNumThreads(1);
  const la::SparseMatrix a = MakeSparse(kNodes, kNodes, 1);
  const la::Vector x = MakeProb(kNodes, 1);
  const la::DenseMatrix xp = MakeProbPanel(kNodes, kWidth, 2);
  const la::DenseMatrix yp_in = MakeProbPanel(kNodes, kWidth, 3);
  la::Vector y;
  la::DenseMatrix panel_out(kNodes, kWidth);
  la::Vector bilinear_out(kWidth);
  la::PanelWorkspace ws;

  EXPECT_EQ(WarmAllocs([&] { a.MatVecInto(x, &y); }), 0u) << "MatVecInto";
  EXPECT_EQ(WarmAllocs([&] { a.TransposeMatVecInto(x, &y, &ws); }), 0u)
      << "TransposeMatVecInto";
  EXPECT_EQ(WarmAllocs([&] { a.MatMulPanel(xp, kWidth, &panel_out); }), 0u)
      << "MatMulPanel";
  EXPECT_EQ(
      WarmAllocs([&] { a.TransposeMatMulPanel(xp, kWidth, &panel_out, &ws); }),
      0u)
      << "TransposeMatMulPanel";
  EXPECT_EQ(WarmAllocs([&] {
              a.BilinearPanel(xp, yp_in, kWidth, bilinear_out.data(), &ws);
            }),
            0u)
      << "BilinearPanel";
}

TEST(SteadyStateAllocTest, TensorKernelsAllocateNothingWhenWarm) {
  ThreadCountGuard guard;
  parallel::SetNumThreads(1);
  const tensor::SparseTensor3 adjacency = MakeTensor();
  const tensor::TransitionTensors tensors =
      tensor::TransitionTensors::Build(adjacency);
  const la::Vector x = MakeProb(kNodes, 4);
  const la::Vector x2 = MakeProb(kNodes, 5);
  const la::Vector z = MakeProb(kRelations, 6);
  const la::DenseMatrix xp = MakeProbPanel(kNodes, kWidth, 7);
  const la::DenseMatrix yp = MakeProbPanel(kNodes, kWidth, 8);
  const la::DenseMatrix zp = MakeProbPanel(kRelations, kWidth, 9);
  la::Vector y, w, x_sums, w_sums;
  la::DenseMatrix node_out(kNodes, kWidth);
  la::DenseMatrix rel_out(kRelations, kWidth);
  la::PanelWorkspace ws;
  la::LeadingColumnSums(xp, kWidth, &x_sums);

  EXPECT_EQ(WarmAllocs([&] { adjacency.ContractMode1Into(x, z, &y); }), 0u)
      << "ContractMode1Into";
  EXPECT_EQ(WarmAllocs([&] { adjacency.ContractMode3Into(x, x2, &w); }), 0u)
      << "ContractMode3Into";
  EXPECT_EQ(WarmAllocs(
                [&] { adjacency.ContractMode1Panel(xp, zp, kWidth, &node_out,
                                                   &ws); }),
            0u)
      << "ContractMode1Panel";
  EXPECT_EQ(WarmAllocs(
                [&] { adjacency.ContractMode3Panel(xp, yp, kWidth, &rel_out,
                                                   &ws); }),
            0u)
      << "ContractMode3Panel";
  EXPECT_EQ(WarmAllocs([&] { tensors.ApplyOInto(x, z, &y); }), 0u)
      << "ApplyOInto";
  EXPECT_EQ(WarmAllocs([&] { tensors.ApplyRInto(x, x2, &w); }), 0u)
      << "ApplyRInto";
  EXPECT_EQ(
      WarmAllocs([&] { tensors.ApplyOPanel(xp, zp, kWidth, &node_out, &ws); }),
      0u)
      << "ApplyOPanel";
  EXPECT_EQ(WarmAllocs([&] {
              tensors.ApplyRPanel(xp, xp, kWidth, &rel_out, &ws, &x_sums,
                                  &x_sums, &w_sums);
            }),
            0u)
      << "ApplyRPanel with sums";
}

TEST(SteadyStateAllocTest, SimilarityAndFusedPassesAllocateNothingWhenWarm) {
  ThreadCountGuard guard;
  parallel::SetNumThreads(1);
  const hin::FeatureSimilarity sim =
      hin::FeatureSimilarity::Build(MakeSparse(kNodes, kVocab, 11));
  const la::Vector x = MakeProb(kNodes, 12);
  const la::DenseMatrix xp = MakeProbPanel(kNodes, kWidth, 13);
  const la::DenseMatrix wx = MakeProbPanel(kNodes, kWidth, 14);
  const la::DenseMatrix l = MakeProbPanel(kNodes, kWidth, 15);
  const la::DenseMatrix prev = MakeProbPanel(kNodes, kWidth, 16);
  la::Vector y, sums, rho;
  la::DenseMatrix wx_out(kNodes, kWidth);
  la::DenseMatrix combine = MakeProbPanel(kNodes, kWidth, 17);
  la::PanelWorkspace ws;

  EXPECT_EQ(WarmAllocs([&] { sim.ApplyInto(x, &ws, &y); }), 0u) << "ApplyInto";
  EXPECT_EQ(WarmAllocs([&] { sim.ApplyPanel(xp, kWidth, &wx_out, &ws); }), 0u)
      << "ApplyPanel";
  // The fused epilogue pair, exactly as the batched fit loop runs it:
  // combine (producing the column sums), then normalize + residual
  // (consuming them). Re-normalizing an already-normalized panel is fine —
  // the sums stay positive.
  EXPECT_EQ(WarmAllocs([&] {
              la::FusedCombineColumns(0.55, 0.4, wx, 0.05, l, kWidth, &combine,
                                      &sums);
              la::FusedNormalizeDistanceColumns(&sums, prev, kWidth, &combine,
                                                &rho);
            }),
            0u)
      << "FusedCombineColumns + FusedNormalizeDistanceColumns";
}

TEST(SteadyStateAllocTest, IcaLabelRefreshAllocatesNothingWhenWarm) {
  ThreadCountGuard guard;
  parallel::SetNumThreads(1);
  datasets::SyntheticHinConfig config;
  config.num_nodes = 60;
  config.class_names = {"A", "B", "C"};
  config.relations = {{"r0", 0.8, 0.0, 2.0, {}, false}};
  config.seed = 7;
  const hin::Hin hin = datasets::GenerateSyntheticHin(config);
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) labeled.push_back(i);
  const la::Vector x = MakeProb(hin.num_nodes(), 18);
  la::Vector restart;
  std::vector<bool> known;

  EXPECT_EQ(WarmAllocs([&] {
              hin::UpdatedLabelVectorInto(hin, labeled, 0, x, 0.3, &restart,
                                          &known);
            }),
            0u)
      << "UpdatedLabelVectorInto";
}

}  // namespace
}  // namespace tmark
