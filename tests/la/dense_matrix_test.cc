#include "tmark/la/dense_matrix.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"

namespace tmark::la {
namespace {

DenseMatrix Sample() {
  return DenseMatrix::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
}

TEST(DenseMatrixTest, ConstructionAndAccess) {
  DenseMatrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.5);
  m.At(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 7.0);
}

TEST(DenseMatrixTest, FromRowsRejectsRagged) {
  EXPECT_THROW(DenseMatrix::FromRows({{1.0}, {1.0, 2.0}}), CheckError);
}

TEST(DenseMatrixTest, Identity) {
  const DenseMatrix eye = DenseMatrix::Identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(eye.At(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrixTest, RowAndCol) {
  const DenseMatrix m = Sample();
  EXPECT_EQ(m.Row(1), (Vector{4.0, 5.0, 6.0}));
  EXPECT_EQ(m.Col(2), (Vector{3.0, 6.0}));
  EXPECT_THROW(m.Row(5), CheckError);
}

TEST(DenseMatrixTest, MatVec) {
  const DenseMatrix m = Sample();
  EXPECT_EQ(m.MatVec({1.0, 0.0, -1.0}), (Vector{-2.0, -2.0}));
  EXPECT_THROW(m.MatVec({1.0}), CheckError);
}

TEST(DenseMatrixTest, TransposeMatVec) {
  const DenseMatrix m = Sample();
  EXPECT_EQ(m.TransposeMatVec({1.0, 1.0}), (Vector{5.0, 7.0, 9.0}));
}

TEST(DenseMatrixTest, MatMul) {
  const DenseMatrix a = DenseMatrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  const DenseMatrix b = DenseMatrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  const DenseMatrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 3.0);
}

TEST(DenseMatrixTest, MatMulIdentity) {
  const DenseMatrix m = Sample();
  const DenseMatrix out = m.MatMul(DenseMatrix::Identity(3));
  EXPECT_DOUBLE_EQ(out.MaxAbsDiff(m), 0.0);
}

TEST(DenseMatrixTest, Transpose) {
  const DenseMatrix t = Sample().Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
}

TEST(DenseMatrixTest, AddAndScaleInPlace) {
  DenseMatrix m = Sample();
  m.AddInPlace(Sample());
  m.ScaleInPlace(0.5);
  EXPECT_DOUBLE_EQ(m.MaxAbsDiff(Sample()), 0.0);
}

TEST(DenseMatrixTest, ColumnSums) {
  EXPECT_EQ(Sample().ColumnSums(), (Vector{5.0, 7.0, 9.0}));
}

TEST(DenseMatrixTest, NormalizeColumnsStochastic) {
  DenseMatrix m = DenseMatrix::FromRows({{1.0, 0.0}, {3.0, 0.0}});
  m.NormalizeColumns();
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.75);
  // Zero column becomes uniform (dangling convention).
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.5);
}

TEST(DenseMatrixTest, FrobeniusNorm) {
  const DenseMatrix m = DenseMatrix::FromRows({{3.0, 0.0}, {0.0, 4.0}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a = Sample();
  DenseMatrix b = Sample();
  b.At(0, 1) += 0.25;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.25);
  EXPECT_THROW(a.MaxAbsDiff(DenseMatrix(1, 1)), CheckError);
}

}  // namespace
}  // namespace tmark::la
