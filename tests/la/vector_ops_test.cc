#include "tmark/la/vector_ops.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"

namespace tmark::la {
namespace {

TEST(VectorOpsTest, Constructors) {
  EXPECT_EQ(Constant(3, 2.5), (Vector{2.5, 2.5, 2.5}));
  EXPECT_EQ(Zeros(2), (Vector{0.0, 0.0}));
  const Vector u = UniformProbability(4);
  for (double v : u) EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_THROW(UniformProbability(0), CheckError);
}

TEST(VectorOpsTest, DotAndNorms) {
  const Vector a = {1.0, -2.0, 3.0};
  const Vector b = {4.0, 5.0, -6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 - 18.0);
  EXPECT_DOUBLE_EQ(Norm1(a), 6.0);
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(a), 3.0);
  EXPECT_DOUBLE_EQ(Sum(a), 2.0);
}

TEST(VectorOpsTest, DotSizeMismatchThrows) {
  EXPECT_THROW(Dot({1.0}, {1.0, 2.0}), CheckError);
}

TEST(VectorOpsTest, AxpyScaleAddSub) {
  Vector y = {1.0, 1.0};
  Axpy(2.0, {3.0, -1.0}, &y);
  EXPECT_EQ(y, (Vector{7.0, -1.0}));
  Scale(0.5, &y);
  EXPECT_EQ(y, (Vector{3.5, -0.5}));
  EXPECT_EQ(Add({1.0, 2.0}, {3.0, 4.0}), (Vector{4.0, 6.0}));
  EXPECT_EQ(Sub({1.0, 2.0}, {3.0, 4.0}), (Vector{-2.0, -2.0}));
}

TEST(VectorOpsTest, L1Distance) {
  EXPECT_DOUBLE_EQ(L1Distance({1.0, 2.0}, {3.0, 0.0}), 4.0);
  EXPECT_DOUBLE_EQ(L1Distance({1.0}, {1.0}), 0.0);
}

TEST(VectorOpsTest, NormalizeL1MakesProbability) {
  Vector v = {1.0, 3.0, 0.0};
  NormalizeL1(&v);
  EXPECT_TRUE(IsProbabilityVector(v));
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(VectorOpsTest, NormalizeL1ZeroThrows) {
  Vector v = {0.0, 0.0};
  EXPECT_THROW(NormalizeL1(&v), CheckError);
}

TEST(VectorOpsTest, ArgMaxFirstOnTies) {
  EXPECT_EQ(ArgMax({1.0, 5.0, 5.0, 2.0}), 1u);
  EXPECT_EQ(ArgMax({-1.0}), 0u);
  EXPECT_THROW(ArgMax({}), CheckError);
}

TEST(VectorOpsTest, ArgSortDescendingStable) {
  const auto idx = ArgSortDescending({0.2, 0.9, 0.2, 0.5});
  ASSERT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
  EXPECT_EQ(idx[2], 0u);  // ties keep original order
  EXPECT_EQ(idx[3], 2u);
}

TEST(VectorOpsTest, IsProbabilityVector) {
  EXPECT_TRUE(IsProbabilityVector({0.5, 0.5}));
  EXPECT_FALSE(IsProbabilityVector({0.5, 0.6}));
  EXPECT_FALSE(IsProbabilityVector({1.5, -0.5}));
  EXPECT_TRUE(IsProbabilityVector({1.0 + 1e-12, -1e-12}));
}

}  // namespace
}  // namespace tmark::la
