// Unit tests for the adaptive-width offset arrays (la/index_array.h): width
// selection at build time, the force-wide test knob, storage accounting,
// and exact round-trips through the canonical 64-bit view.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "tmark/la/index_array.h"

namespace tmark::la {
namespace {

constexpr std::size_t kU32Max = std::numeric_limits<std::uint32_t>::max();

struct ForceWideGuard {
  ~ForceWideGuard() { SetForceWideIndexArrays(false); }
};

TEST(IndexArrayTest, SmallOffsetsAreStoredCompact) {
  const std::vector<std::size_t> offsets = {0, 3, 3, 10, kU32Max};
  const IndexArray a = IndexArray::FromOffsets(offsets);
  EXPECT_TRUE(a.is_compact());
  EXPECT_EQ(a.index_bits(), 32u);
  ASSERT_EQ(a.size(), offsets.size());
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(a[i], offsets[i]) << "offset " << i;
  }
  EXPECT_EQ(a.front(), 0u);
  EXPECT_EQ(a.back(), kU32Max);
  EXPECT_EQ(a.StorageBytes(), offsets.size() * sizeof(std::uint32_t));
  EXPECT_EQ(a.ToVector(), offsets);
}

TEST(IndexArrayTest, OffsetsBeyondU32WidenAutomatically) {
  const std::vector<std::size_t> offsets = {0, 17, kU32Max + std::size_t{1}};
  const IndexArray a = IndexArray::FromOffsets(offsets);
  EXPECT_FALSE(a.is_compact());
  EXPECT_EQ(a.index_bits(), 64u);
  EXPECT_EQ(a.back(), kU32Max + std::size_t{1});
  EXPECT_EQ(a.StorageBytes(), offsets.size() * sizeof(std::uint64_t));
  EXPECT_EQ(a.ToVector(), offsets);
}

TEST(IndexArrayTest, ForceWideKnobOverridesCompactSelection) {
  ForceWideGuard guard;
  const std::vector<std::size_t> offsets = {0, 1, 2};
  SetForceWideIndexArrays(true);
  EXPECT_TRUE(ForceWideIndexArrays());
  const IndexArray wide = IndexArray::FromOffsets(offsets);
  EXPECT_FALSE(wide.is_compact());
  EXPECT_EQ(wide.StorageBytes(), offsets.size() * sizeof(std::uint64_t));
  EXPECT_EQ(wide.ToVector(), offsets);

  SetForceWideIndexArrays(false);
  const IndexArray compact = IndexArray::FromOffsets(offsets);
  EXPECT_TRUE(compact.is_compact());
  // Same logical content, half the bytes.
  EXPECT_EQ(compact.ToVector(), wide.ToVector());
  EXPECT_EQ(2 * compact.StorageBytes(), wide.StorageBytes());
}

TEST(IndexArrayTest, ZerosAndEmpty) {
  const IndexArray empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.StorageBytes(), 0u);

  const IndexArray zeros = IndexArray::Zeros(5);
  EXPECT_TRUE(zeros.is_compact());
  ASSERT_EQ(zeros.size(), 5u);
  for (std::size_t i = 0; i < zeros.size(); ++i) EXPECT_EQ(zeros[i], 0u);
}

}  // namespace
}  // namespace tmark::la
