// Bit-identity tests for the register-blocked micro-kernels (la/microkernel.h)
// and the fused panel passes built on them (la/panel.h).
//
// Every mk:: primitive must equal a plain scalar loop bit for bit at every
// width — including odd/tail widths that exercise the 4/2/1 blocks — and must
// never touch memory at or beyond `width` (panels have live inactive columns
// there). The fused panel passes must equal the unfused sweep sequence
// exactly: these equivalences are what lets the batched engine stay
// bit-identical to the per-class engine after vectorization and fusion.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "tmark/la/dense_matrix.h"
#include "tmark/la/microkernel.h"
#include "tmark/la/panel.h"
#include "tmark/la/vector_ops.h"

namespace tmark::la {
namespace {

// Tail widths around every block boundary plus two vector-friendly widths.
const std::size_t kWidths[] = {1, 2, 3, 5, 7, 9, 16, 17};
constexpr std::size_t kPad = 3;          // sentinel slots beyond width
constexpr double kSentinel = -777.125;   // exactly representable

// Deterministic "irregular" doubles: varied signs and magnitudes so that
// reassociation or skipped ops would change bits.
double Val(std::size_t i, std::size_t salt) {
  return std::sin(static_cast<double>(i * 37 + salt * 101 + 1)) * 3.25 +
         0.017 * static_cast<double>(i + salt);
}

std::vector<double> MakeBuf(std::size_t width, std::size_t salt) {
  std::vector<double> buf(width + kPad);
  for (std::size_t i = 0; i < width; ++i) buf[i] = Val(i, salt);
  for (std::size_t i = width; i < buf.size(); ++i) buf[i] = kSentinel;
  return buf;
}

void ExpectEqualAndPadded(const std::vector<double>& got,
                          const std::vector<double>& want,
                          std::size_t width, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_EQ(got[i], want[i]) << what << " col " << i << " width " << width;
  }
  for (std::size_t i = width; i < got.size(); ++i) {
    EXPECT_EQ(got[i], kSentinel)
        << what << " wrote past width " << width << " at " << i;
  }
}

TEST(MicrokernelTest, BlockWidthsDescendToScalarTail) {
  ASSERT_EQ(sizeof(mk::kBlockWidths) / sizeof(mk::kBlockWidths[0]), 4u);
  EXPECT_EQ(mk::kBlockWidths[0], 8u);
  EXPECT_EQ(mk::kBlockWidths[3], 1u);
  EXPECT_NE(std::string(mk::SimdAnnotation()), "");
}

TEST(MicrokernelTest, PrimitivesMatchScalarLoopsAtEveryWidth) {
  for (const std::size_t w : kWidths) {
    SCOPED_TRACE("width " + std::to_string(w));
    const std::vector<double> a = MakeBuf(w, 1);
    const std::vector<double> b = MakeBuf(w, 2);

    {  // Zero
      std::vector<double> got = MakeBuf(w, 3), want = got;
      mk::Zero(got.data(), w);
      for (std::size_t c = 0; c < w; ++c) want[c] = 0.0;
      ExpectEqualAndPadded(got, want, w, "Zero");
    }
    {  // Copy
      std::vector<double> got = MakeBuf(w, 3), want = got;
      mk::Copy(got.data(), a.data(), w);
      for (std::size_t c = 0; c < w; ++c) want[c] = a[c];
      ExpectEqualAndPadded(got, want, w, "Copy");
    }
    {  // Scale
      std::vector<double> got = MakeBuf(w, 3), want = got;
      mk::Scale(got.data(), 0.731, w);
      for (std::size_t c = 0; c < w; ++c) want[c] *= 0.731;
      ExpectEqualAndPadded(got, want, w, "Scale");
    }
    {  // Axpy
      std::vector<double> got = MakeBuf(w, 3), want = got;
      mk::Axpy(got.data(), -1.37, a.data(), w);
      for (std::size_t c = 0; c < w; ++c) want[c] += -1.37 * a[c];
      ExpectEqualAndPadded(got, want, w, "Axpy");
    }
    {  // Add
      std::vector<double> got = MakeBuf(w, 3), want = got;
      mk::Add(got.data(), a.data(), w);
      for (std::size_t c = 0; c < w; ++c) want[c] += a[c];
      ExpectEqualAndPadded(got, want, w, "Add");
    }
    {  // Mul
      std::vector<double> got = MakeBuf(w, 3), want = got;
      mk::Mul(got.data(), a.data(), w);
      for (std::size_t c = 0; c < w; ++c) want[c] *= a[c];
      ExpectEqualAndPadded(got, want, w, "Mul");
    }
    {  // MulAdd
      std::vector<double> got = MakeBuf(w, 3), want = got;
      mk::MulAdd(got.data(), a.data(), b.data(), w);
      for (std::size_t c = 0; c < w; ++c) want[c] += a[c] * b[c];
      ExpectEqualAndPadded(got, want, w, "MulAdd");
    }
    {  // DivScalar (true division; a reciprocal rewrite would change bits)
      std::vector<double> got = MakeBuf(w, 3), want = got;
      mk::DivScalar(got.data(), a.data(), 3.0, w);
      for (std::size_t c = 0; c < w; ++c) want[c] = a[c] / 3.0;
      ExpectEqualAndPadded(got, want, w, "DivScalar");
    }
    {  // AccumAbsDiff
      std::vector<double> got = MakeBuf(w, 3), want = got;
      mk::AccumAbsDiff(got.data(), a.data(), b.data(), w);
      for (std::size_t c = 0; c < w; ++c) want[c] += std::abs(a[c] - b[c]);
      ExpectEqualAndPadded(got, want, w, "AccumAbsDiff");
    }
    {  // FusedCombine == scale, +beta*wx, +alpha*l, sum accumulation
      std::vector<double> got_x = MakeBuf(w, 3), want_x = got_x;
      std::vector<double> got_s = MakeBuf(w, 4), want_s = got_s;
      mk::FusedCombine(got_x.data(), 0.55, 0.4, a.data(), 0.05, b.data(),
                       got_s.data(), w);
      for (std::size_t c = 0; c < w; ++c) {
        double v = want_x[c] * 0.55;
        v += 0.4 * a[c];
        v += 0.05 * b[c];
        want_x[c] = v;
        want_s[c] += v;
      }
      ExpectEqualAndPadded(got_x, want_x, w, "FusedCombine.x");
      ExpectEqualAndPadded(got_s, want_s, w, "FusedCombine.sums");
    }
    {  // FusedScaleAbsDiff == multiply-by-reciprocal then |diff| accumulation
      std::vector<double> got_d = MakeBuf(w, 3), want_d = got_d;
      std::vector<double> got_acc = MakeBuf(w, 4), want_acc = got_acc;
      mk::FusedScaleAbsDiff(got_d.data(), a.data(), b.data(), got_acc.data(),
                            w);
      for (std::size_t c = 0; c < w; ++c) {
        const double v = want_d[c] * a[c];
        want_d[c] = v;
        want_acc[c] += std::abs(v - b[c]);
      }
      ExpectEqualAndPadded(got_d, want_d, w, "FusedScaleAbsDiff.d");
      ExpectEqualAndPadded(got_acc, want_acc, w, "FusedScaleAbsDiff.acc");
    }
  }
}

TEST(MicrokernelTest, AnyNonZeroChecksOnlyLeadingColumns) {
  for (const std::size_t w : kWidths) {
    SCOPED_TRACE("width " + std::to_string(w));
    std::vector<double> buf(w + kPad, 0.0);
    for (std::size_t i = w; i < buf.size(); ++i) buf[i] = kSentinel;
    EXPECT_FALSE(mk::AnyNonZero(buf.data(), w));
    buf[w - 1] = 1e-300;  // tiny but non-zero, in the last active column
    EXPECT_TRUE(mk::AnyNonZero(buf.data(), w));
    buf[w - 1] = -0.0;  // negative zero still compares == 0.0
    EXPECT_FALSE(mk::AnyNonZero(buf.data(), w));
  }
}

// --- fused panel passes vs the unfused sweep sequence ---------------------

DenseMatrix MakePanel(std::size_t rows, std::size_t cols, std::size_t salt,
                      bool positive) {
  DenseMatrix p(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = Val(r * cols + c, salt);
      p.At(r, c) = positive ? std::abs(v) + 0.01 : v;
    }
  }
  return p;
}

TEST(MicrokernelTest, FusedCombineColumnsEqualsUnfusedSweeps) {
  constexpr std::size_t kRows = 33;
  constexpr std::size_t kStride = 9;  // physical cols > width: stride safety
  const double rel = 0.55, beta = 0.4, alpha = 0.05;
  for (const std::size_t w : {1u, 2u, 3u, 5u, 7u, 9u}) {
    SCOPED_TRACE("width " + std::to_string(w));
    const DenseMatrix wx = MakePanel(kRows, kStride, 11, false);
    const DenseMatrix l = MakePanel(kRows, kStride, 12, false);
    DenseMatrix fused = MakePanel(kRows, kStride, 13, false);
    DenseMatrix unfused = fused;

    Vector fused_sums;
    FusedCombineColumns(rel, beta, wx, alpha, l, w, &fused, &fused_sums);

    ScaleLeadingColumns(rel, w, &unfused);
    AxpyLeadingColumns(beta, wx, w, &unfused);
    AxpyLeadingColumns(alpha, l, w, &unfused);
    Vector unfused_sums;
    LeadingColumnSums(unfused, w, &unfused_sums);

    EXPECT_EQ(fused.MaxAbsDiff(unfused), 0.0);
    ASSERT_EQ(fused_sums.size(), w);
    for (std::size_t c = 0; c < w; ++c) {
      EXPECT_EQ(fused_sums[c], unfused_sums[c]) << "col " << c;
    }
    // Inactive columns (>= width) must be untouched.
    for (std::size_t r = 0; r < kRows; ++r) {
      for (std::size_t c = w; c < kStride; ++c) {
        EXPECT_EQ(fused.At(r, c), unfused.At(r, c));
      }
    }
  }
}

TEST(MicrokernelTest, FusedNormalizeDistanceEqualsUnfusedSweeps) {
  constexpr std::size_t kRows = 33;
  constexpr std::size_t kStride = 9;
  for (const std::size_t w : {1u, 2u, 3u, 5u, 7u, 9u}) {
    SCOPED_TRACE("width " + std::to_string(w));
    const DenseMatrix prev = MakePanel(kRows, kStride, 21, true);
    DenseMatrix fused = MakePanel(kRows, kStride, 22, true);
    DenseMatrix unfused = fused;

    Vector sums;
    LeadingColumnSums(fused, w, &sums);
    Vector rho;
    FusedNormalizeDistanceColumns(&sums, prev, w, &fused, &rho);

    NormalizeLeadingColumnsL1(w, &unfused);
    Vector rho_ref;
    LeadingColumnL1Distances(unfused, prev, w, &rho_ref);

    EXPECT_EQ(fused.MaxAbsDiff(unfused), 0.0);
    ASSERT_EQ(rho.size(), w);
    for (std::size_t c = 0; c < w; ++c) {
      EXPECT_EQ(rho[c], rho_ref[c]) << "col " << c;
    }
  }
}

// The fused passes must also match the single-vector ops per column — the
// per-class engine's exact sequence (Scale/Axpy/NormalizeL1/L1Distance).
TEST(MicrokernelTest, FusedPassesMatchPerVectorOpsPerColumn) {
  constexpr std::size_t kRows = 29;
  constexpr std::size_t kStride = 7;
  const double rel = 0.55, beta = 0.4, alpha = 0.05;
  const std::size_t w = 5;
  const DenseMatrix wx = MakePanel(kRows, kStride, 31, true);
  const DenseMatrix l = MakePanel(kRows, kStride, 32, true);
  const DenseMatrix prev = MakePanel(kRows, kStride, 33, true);
  DenseMatrix panel = MakePanel(kRows, kStride, 34, true);
  const DenseMatrix original = panel;

  Vector sums;
  FusedCombineColumns(rel, beta, wx, alpha, l, w, &panel, &sums);
  Vector rho;
  FusedNormalizeDistanceColumns(&sums, prev, w, &panel, &rho);

  for (std::size_t c = 0; c < w; ++c) {
    SCOPED_TRACE("column " + std::to_string(c));
    Vector x = original.Col(c);
    Scale(rel, &x);
    Axpy(beta, wx.Col(c), &x);
    Axpy(alpha, l.Col(c), &x);
    NormalizeL1(&x);
    const double rho_c = L1Distance(x, prev.Col(c));
    EXPECT_EQ(rho[c], rho_c);
    for (std::size_t r = 0; r < kRows; ++r) {
      EXPECT_EQ(panel.At(r, c), x[r]) << "row " << r;
    }
  }
}

}  // namespace
}  // namespace tmark::la
