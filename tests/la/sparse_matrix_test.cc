#include "tmark/la/sparse_matrix.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/common/random.h"

namespace tmark::la {
namespace {

SparseMatrix Sample() {
  // [ 1 0 2 ]
  // [ 0 0 3 ]
  return SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 2, 3.0}});
}

SparseMatrix RandomSparse(std::size_t rows, std::size_t cols, double density,
                          Rng* rng) {
  std::vector<Triplet> trips;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) {
        trips.push_back({static_cast<std::uint32_t>(r),
                         static_cast<std::uint32_t>(c), rng->Uniform(0.1, 2.0)});
      }
    }
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(trips));
}

TEST(SparseMatrixTest, EmptyAndZeroMatrices) {
  SparseMatrix empty;
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.NumNonZeros(), 0u);
  SparseMatrix zero(4, 5);
  EXPECT_EQ(zero.rows(), 4u);
  EXPECT_EQ(zero.cols(), 5u);
  EXPECT_EQ(zero.NumNonZeros(), 0u);
  EXPECT_DOUBLE_EQ(zero.At(3, 4), 0.0);
}

TEST(SparseMatrixTest, FromTripletsSumsDuplicates) {
  const SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 1, 1.0}, {0, 1, 2.5}, {1, 0, 1.0}});
  EXPECT_EQ(m.NumNonZeros(), 2u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 3.5);
}

TEST(SparseMatrixTest, FromTripletsOutOfBoundsThrows) {
  EXPECT_THROW(SparseMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}), CheckError);
}

TEST(SparseMatrixTest, AtReturnsStoredAndZero) {
  const SparseMatrix m = Sample();
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 3.0);
  EXPECT_THROW(m.At(2, 0), CheckError);
}

TEST(SparseMatrixTest, FromDenseRoundTrip) {
  const DenseMatrix d =
      DenseMatrix::FromRows({{0.0, 1.5, 0.0}, {2.0, 0.0, -1.0}});
  const SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_EQ(s.NumNonZeros(), 3u);
  EXPECT_DOUBLE_EQ(s.ToDense().MaxAbsDiff(d), 0.0);
}

TEST(SparseMatrixTest, MatVecMatchesDense) {
  Rng rng(5);
  const SparseMatrix s = RandomSparse(13, 9, 0.3, &rng);
  const DenseMatrix d = s.ToDense();
  Vector x(9);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  const Vector ys = s.MatVec(x);
  const Vector yd = d.MatVec(x);
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SparseMatrixTest, TransposeMatVecMatchesDense) {
  Rng rng(6);
  const SparseMatrix s = RandomSparse(7, 11, 0.4, &rng);
  const DenseMatrix d = s.ToDense();
  Vector x(7);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  const Vector ys = s.TransposeMatVec(x);
  const Vector yd = d.TransposeMatVec(x);
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SparseMatrixTest, RowAndColumnSums) {
  const SparseMatrix m = Sample();
  EXPECT_EQ(m.RowSums(), (Vector{3.0, 3.0}));
  EXPECT_EQ(m.ColumnSums(), (Vector{1.0, 0.0, 5.0}));
}

TEST(SparseMatrixTest, ScaleColumnsAndRows) {
  const SparseMatrix m = Sample();
  const SparseMatrix sc = m.ScaleColumns({2.0, 5.0, 0.5});
  EXPECT_DOUBLE_EQ(sc.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(sc.At(0, 2), 1.0);
  const SparseMatrix sr = m.ScaleRows({0.0, 1.0});
  EXPECT_DOUBLE_EQ(sr.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(sr.At(1, 2), 3.0);
}

TEST(SparseMatrixTest, NormalizeColumnsSparseFlagsDangling) {
  std::vector<bool> dangling;
  const SparseMatrix w = Sample().NormalizeColumnsSparse(&dangling);
  ASSERT_EQ(dangling.size(), 3u);
  EXPECT_FALSE(dangling[0]);
  EXPECT_TRUE(dangling[1]);
  EXPECT_FALSE(dangling[2]);
  EXPECT_DOUBLE_EQ(w.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.At(0, 2), 0.4);
  EXPECT_DOUBLE_EQ(w.At(1, 2), 0.6);
}

TEST(SparseMatrixTest, TransposeMatchesDense) {
  Rng rng(7);
  const SparseMatrix s = RandomSparse(6, 10, 0.35, &rng);
  EXPECT_DOUBLE_EQ(
      s.Transpose().ToDense().MaxAbsDiff(s.ToDense().Transpose()), 0.0);
}

TEST(SparseMatrixTest, MatMulMatchesDense) {
  Rng rng(8);
  const SparseMatrix a = RandomSparse(5, 7, 0.4, &rng);
  const SparseMatrix b = RandomSparse(7, 4, 0.4, &rng);
  const DenseMatrix expect = a.ToDense().MatMul(b.ToDense());
  EXPECT_LT(a.MatMul(b).ToDense().MaxAbsDiff(expect), 1e-12);
}

TEST(SparseMatrixTest, MatMulDenseMatchesDense) {
  Rng rng(9);
  const SparseMatrix a = RandomSparse(5, 7, 0.4, &rng);
  DenseMatrix b(7, 3);
  for (double& v : b.data()) v = rng.Uniform(-1.0, 1.0);
  const DenseMatrix expect = a.ToDense().MatMul(b);
  EXPECT_LT(a.MatMulDense(b).MaxAbsDiff(expect), 1e-12);
}

TEST(SparseMatrixTest, TransposeMatMulDenseMatchesDense) {
  Rng rng(10);
  const SparseMatrix a = RandomSparse(6, 5, 0.4, &rng);
  DenseMatrix b(6, 3);
  for (double& v : b.data()) v = rng.Uniform(-1.0, 1.0);
  const DenseMatrix expect = a.ToDense().Transpose().MatMul(b);
  EXPECT_LT(a.TransposeMatMulDense(b).MaxAbsDiff(expect), 1e-12);
}

TEST(SparseMatrixTest, AddMatchesDense) {
  Rng rng(11);
  const SparseMatrix a = RandomSparse(6, 6, 0.3, &rng);
  const SparseMatrix b = RandomSparse(6, 6, 0.3, &rng);
  DenseMatrix expect = a.ToDense();
  expect.AddInPlace(b.ToDense());
  EXPECT_LT(a.Add(b).ToDense().MaxAbsDiff(expect), 1e-12);
}

TEST(SparseMatrixTest, BilinearMatchesDense) {
  Rng rng(12);
  const SparseMatrix a = RandomSparse(8, 8, 0.3, &rng);
  Vector x(8), y(8);
  for (double& v : x) v = rng.Uniform(0.0, 1.0);
  for (double& v : y) v = rng.Uniform(0.0, 1.0);
  double expect = 0.0;
  const DenseMatrix d = a.ToDense();
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) expect += x[r] * d.At(r, c) * y[c];
  }
  EXPECT_NEAR(a.Bilinear(x, y), expect, 1e-12);
}

TEST(SparseMatrixTest, IsNonNegative) {
  EXPECT_TRUE(Sample().IsNonNegative());
  const SparseMatrix neg =
      SparseMatrix::FromTriplets(1, 1, {{0, 0, -0.5}});
  EXPECT_FALSE(neg.IsNonNegative());
}

/// Parameterized size sweep: CSR invariants hold across shapes.
class SparseMatrixSizeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SparseMatrixSizeTest, CsrInvariants) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 31 + cols);
  const SparseMatrix m = RandomSparse(rows, cols, 0.25, &rng);
  ASSERT_EQ(m.row_ptr().size(), rows + 1);
  EXPECT_EQ(m.row_ptr().front(), 0u);
  EXPECT_EQ(m.row_ptr().back(), m.NumNonZeros());
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_LE(m.row_ptr()[r], m.row_ptr()[r + 1]);
    for (std::size_t p = m.row_ptr()[r] + 1; p < m.row_ptr()[r + 1]; ++p) {
      EXPECT_LT(m.col_idx()[p - 1], m.col_idx()[p]);  // sorted, unique
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SparseMatrixSizeTest,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 1),
                      std::make_pair<std::size_t, std::size_t>(1, 20),
                      std::make_pair<std::size_t, std::size_t>(20, 1),
                      std::make_pair<std::size_t, std::size_t>(16, 16),
                      std::make_pair<std::size_t, std::size_t>(50, 13)));

}  // namespace
}  // namespace tmark::la
