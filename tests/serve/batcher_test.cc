// Coalescing-scheduler tests (serve/batcher.h): batched seed queries are
// bit-identical to width-1 runs (the panel kernels perform per-column
// exactly the single-vector ops, in order), classify answers come straight
// from the published bundle, and an overfull admission queue degrades into
// typed kResourceExhausted rejections instead of unbounded latency. Runs
// under the `sanitize` ctest label (TSAN covers the queue/worker handoff).

#include <gtest/gtest.h>

#include <cstddef>
#include <chrono>
#include <thread>
#include <vector>

#include "tmark/common/status.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/hin/hin.h"
#include "tmark/serve/batcher.h"
#include "tmark/serve/bundle.h"
#include "tmark/serve/daemon.h"
#include "tmark/serve/query_engine.h"

namespace tmark::serve {
namespace {

hin::Hin MakeTestHin() {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 180;
  config.class_names = {"A", "B", "C"};
  config.relations = {{"r0", 0.85, 0.0, 3.0, {}, false},
                      {"r1", 0.6, 0.2, 2.0, {}, true}};
  config.seed = 321;
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> EveryThirdLabeled(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) {
    if (!hin.labels(i).empty()) labeled.push_back(i);
  }
  return labeled;
}

TEST(PanelQueryEngineTest, BatchedSeedWalksBitIdenticalToWidthOne) {
  hin::Hin hin = MakeTestHin();
  core::TMarkClassifier clf;
  clf.Fit(hin, EveryThirdLabeled(hin));
  const core::PreparedOperators& ops = *clf.prepared_operators();

  QueryEngineOptions options;
  const std::vector<std::size_t> seeds = {3, 57, 3, 120, 88};  // dup included
  PanelQueryEngine wide(options);
  std::vector<SeedQueryResult> batched;
  wide.Run(ops, seeds, &batched);
  ASSERT_EQ(batched.size(), seeds.size());

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    PanelQueryEngine narrow(options);
    std::vector<SeedQueryResult> single;
    narrow.Run(ops, {seeds[i]}, &single);
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(batched[i].converged, single[0].converged);
    EXPECT_EQ(batched[i].iterations, single[0].iterations);
    ASSERT_EQ(batched[i].x.size(), single[0].x.size());
    for (std::size_t j = 0; j < single[0].x.size(); ++j) {
      ASSERT_EQ(batched[i].x[j], single[0].x[j])
          << "seed " << seeds[i] << " x[" << j << "]";
    }
    for (std::size_t k = 0; k < single[0].z.size(); ++k) {
      ASSERT_EQ(batched[i].z[k], single[0].z[k])
          << "seed " << seeds[i] << " z[" << k << "]";
    }
  }
}

TEST(BatchingSchedulerTest, ClassifyAnswersComeFromThePublishedBundle) {
  hin::Hin hin = MakeTestHin();
  DaemonOptions options;
  ServingDaemon daemon(std::move(hin), EveryThirdLabeled(MakeTestHin()),
                       options);
  ASSERT_TRUE(daemon.Init().ok());
  const BundleHolder::View view = daemon.bundles().Acquire();
  ASSERT_NE(view.bundle, nullptr);

  Request request;
  request.kind = RequestKind::kClassify;
  request.node = 11;
  const Result<Response> response = daemon.Execute(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->stale);
  EXPECT_EQ(response->generation, 1u);
  EXPECT_EQ(response->fingerprint, view.bundle->fingerprint);
  ASSERT_EQ(response->entries.size(), view.bundle->num_classes());
  // Entries are (class, confidence) sorted by decreasing confidence and
  // read verbatim from the bundle's posterior row.
  for (std::size_t i = 0; i + 1 < response->entries.size(); ++i) {
    EXPECT_GE(response->entries[i].score, response->entries[i + 1].score);
  }
  for (const ScoredEntry& entry : response->entries) {
    EXPECT_EQ(entry.score, view.bundle->confidences.At(11, entry.index));
  }
}

TEST(BatchingSchedulerTest, ConcurrentSeedQueriesCoalesceAndStayCorrect) {
  hin::Hin hin = MakeTestHin();
  DaemonOptions options;
  options.batcher.batch_window_us = 20000;  // generous straggler window
  options.batcher.max_batch = 8;
  ServingDaemon daemon(std::move(hin), EveryThirdLabeled(MakeTestHin()),
                       options);
  ASSERT_TRUE(daemon.Init().ok());

  // Width-1 reference answers through the same engine configuration.
  PanelQueryEngine reference(MakeQueryOptions(options.config));
  const core::PreparedOperators& ops =
      *daemon.bundles().Acquire().bundle->ops;

  const std::vector<std::size_t> seeds = {5, 17, 40, 77};
  std::vector<Result<Response>> responses(
      seeds.size(), Result<Response>(InternalError("unset")));
  std::vector<std::thread> clients;
  clients.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    clients.emplace_back([&, i] {
      Request request;
      request.kind = RequestKind::kTopK;
      request.node = seeds[i];
      request.top_k = 4;
      responses[i] = daemon.Execute(request);
    });
  }
  for (std::thread& client : clients) client.join();

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].status().ToString();
    std::vector<SeedQueryResult> expected;
    reference.Run(ops, {seeds[i]}, &expected);
    ASSERT_EQ(responses[i]->entries.size(), 4u);
    for (const ScoredEntry& entry : responses[i]->entries) {
      // Coalescing must not change a single bit of the answer.
      EXPECT_EQ(entry.score, expected[0].x[entry.index])
          << "seed " << seeds[i];
    }
  }
}

TEST(BatchingSchedulerTest, OverfullAdmissionQueueRejectsTyped) {
  hin::Hin hin = MakeTestHin();
  DaemonOptions options;
  // One queue slot, and a long straggler window so the occupied slot is
  // not freed between the concurrent requests below: whoever loses the
  // admission race must be refused immediately with the retryable code —
  // never blocked behind the winner.
  options.batcher.batch_window_us = 1000000;
  options.batcher.max_batch = 8;
  options.batcher.max_queue = 1;
  ServingDaemon daemon(std::move(hin), EveryThirdLabeled(MakeTestHin()),
                       options);
  ASSERT_TRUE(daemon.Init().ok());

  constexpr std::size_t kClients = 3;
  std::vector<std::thread> clients;
  std::vector<Result<Response>> results(
      kClients, Result<Response>(InternalError("unset")));
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Request request;
      request.kind = RequestKind::kRank;
      request.node = i;
      request.top_k = 2;
      results[i] = daemon.scheduler().Execute(request);
    });
  }
  for (std::thread& client : clients) client.join();

  std::size_t served = 0;
  std::size_t rejected = 0;
  for (const Result<Response>& r : results) {
    if (r.ok()) {
      ++served;
    } else {
      ++rejected;
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
          << r.status().ToString();
      EXPECT_NE(r.status().message().find("retry"), std::string::npos);
    }
  }
  EXPECT_GE(served, 1u);
  EXPECT_GE(rejected, 1u) << "admission queue never filled";
}

TEST(BatchingSchedulerTest, RequestsBeforeInitAndAfterStopFailTyped) {
  hin::Hin hin = MakeTestHin();
  DaemonOptions options;
  ServingDaemon daemon(std::move(hin), EveryThirdLabeled(MakeTestHin()),
                       options);
  Request request;
  request.kind = RequestKind::kRank;
  request.node = 1;
  request.top_k = 1;
  // Scheduler not started yet (Init not called).
  const Result<Response> early = daemon.scheduler().Execute(request);
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(daemon.Init().ok());
  daemon.scheduler().Stop();
  const Result<Response> late = daemon.scheduler().Execute(request);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tmark::serve
