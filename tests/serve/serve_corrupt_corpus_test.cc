// Runs every file in tests/serve/corrupt/ through the serving protocol
// reader (ReadFrame, then ParseRequest when the frame itself is well
// formed) and asserts the expected typed status. Each fixture is a
// distinct way a hostile or broken client can corrupt the wire format:
// non-numeric / negative / overlong length prefixes, frames over the size
// limit (kResourceExhausted — the one retryable refusal), streams that end
// mid-frame (kDataLoss), and syntactically valid frames carrying malformed
// requests (kParseError). This binary carries the `sanitize` ctest label so
// the corpus also runs under TMARK_SANITIZE=address/thread builds.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "tmark/common/status.h"
#include "tmark/serve/protocol.h"

#ifndef TMARK_TEST_DATA_DIR
#error "TMARK_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace tmark::serve {
namespace {

std::string CorpusPath(const std::string& file) {
  return std::string(TMARK_TEST_DATA_DIR) + "/serve/corrupt/" + file;
}

struct WireCase {
  const char* file;
  StatusCode expected;
};

/// Feeds one fixture through the frame reader and, when the frame is
/// intact, the request parser; returns the first failure.
Status RunWire(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::string payload;
  const Result<bool> frame = ReadFrame(in, ProtocolLimits{}, &payload);
  if (!frame.ok()) return frame.status();
  EXPECT_TRUE(frame.value()) << path << ": fixture holds no frame at all";
  const Result<Request> request = ParseRequest(payload);
  if (!request.ok()) return request.status();
  return Status::Ok();
}

class CorruptWireCorpusTest : public ::testing::TestWithParam<WireCase> {};

TEST_P(CorruptWireCorpusTest, YieldsExpectedStatus) {
  const WireCase& c = GetParam();
  const Status status = RunWire(CorpusPath(c.file));
  ASSERT_FALSE(status.ok()) << c.file << " was accepted";
  EXPECT_EQ(status.code(), c.expected)
      << c.file << ": " << status.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorruptWireCorpusTest,
    ::testing::Values(
        WireCase{"bad_length.req", StatusCode::kParseError},
        WireCase{"negative_length.req", StatusCode::kParseError},
        WireCase{"long_prefix.req", StatusCode::kParseError},
        WireCase{"oversized_frame.req", StatusCode::kResourceExhausted},
        WireCase{"truncated_payload.req", StatusCode::kDataLoss},
        WireCase{"truncated_prefix.req", StatusCode::kDataLoss},
        WireCase{"empty_payload.req", StatusCode::kParseError},
        WireCase{"unknown_verb.req", StatusCode::kParseError},
        WireCase{"bad_node_id.req", StatusCode::kParseError},
        WireCase{"missing_k.req", StatusCode::kParseError},
        WireCase{"overflowing_index.req", StatusCode::kParseError},
        WireCase{"zero_k.req", StatusCode::kParseError},
        WireCase{"update_no_path.req", StatusCode::kParseError}),
    [](const ::testing::TestParamInfo<WireCase>& info) {
      std::string name = info.param.file;
      for (char& ch : name) {
        if (ch == '.' || ch == '/') ch = '_';
      }
      return name;
    });

// The error a corrupt frame provokes must survive the wire: FormatError
// followed by ParseResponse round-trips the code the client retries (or
// not) on.
TEST(CorruptWireCorpusTest, ErrorCodesRoundTripThroughTheWireFormat) {
  for (const WireCase c :
       {WireCase{"oversized_frame.req", StatusCode::kResourceExhausted},
        WireCase{"unknown_verb.req", StatusCode::kParseError},
        WireCase{"truncated_payload.req", StatusCode::kDataLoss}}) {
    const Status status = RunWire(CorpusPath(c.file));
    ASSERT_FALSE(status.ok());
    const Result<Response> echoed = ParseResponse(FormatError(status));
    ASSERT_FALSE(echoed.ok()) << c.file;
    EXPECT_EQ(echoed.status().code(), c.expected) << c.file;
  }
}

}  // namespace
}  // namespace tmark::serve
