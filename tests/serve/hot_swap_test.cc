// Bundle hot-swap pins (serve/bundle.h + serve/daemon.h): while a
// background update refreshes the classifier, concurrent queries must
// never observe a torn bundle — every response carries a (generation,
// fingerprint) pair that matches exactly one published bundle, stale
// responses only ever carry the pre-swap generation, and the post-swap
// fingerprint equals a from-scratch operator rebuild on the mutated
// network (fingerprint honesty, docs/SERVING.md). Runs at 1 and 4 client
// threads under the `sanitize` ctest label so TSan covers the
// Acquire/Publish handoff.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "tmark/common/status.h"
#include "tmark/core/prepared_operators.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/hin/hin.h"
#include "tmark/hin/hin_delta.h"
#include "tmark/serve/bundle.h"
#include "tmark/serve/daemon.h"
#include "tmark/serve/protocol.h"

namespace tmark::serve {
namespace {

hin::Hin MakeTestHin() {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 150;
  config.class_names = {"A", "B", "C"};
  config.relations = {{"r0", 0.85, 0.0, 3.0, {}, false},
                      {"r1", 0.6, 0.2, 2.0, {}, true}};
  config.seed = 99;
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> EveryThirdLabeled(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) {
    if (!hin.labels(i).empty()) labeled.push_back(i);
  }
  return labeled;
}

/// A feature-row replacement: always applicable, and it perturbs W, so the
/// operator fingerprint must change across the swap.
hin::HinDelta MakeFeatureDelta(const hin::Hin& hin) {
  EXPECT_GE(hin.feature_dim(), 2u);
  hin::HinDelta delta;
  delta.UpdateFeatureRow(4, {{0, 1.5}, {1, 0.25}});
  delta.UpdateFeatureRow(9, {{1, 2.0}});
  return delta;
}

class HotSwapTest : public ::testing::TestWithParam<int> {};

TEST_P(HotSwapTest, ConcurrentQueriesNeverSeeATornBundle) {
  const int num_clients = GetParam();
  hin::Hin hin = MakeTestHin();
  const hin::HinDelta delta = MakeFeatureDelta(hin);

  // From-scratch reference: what the operators of the mutated network
  // fingerprint to, computed on an independent copy.
  hin::Hin reference = MakeTestHin();
  ASSERT_TRUE(reference.ApplyDelta(delta).ok());
  const std::uint64_t expected_fingerprint =
      core::FingerprintOperators(reference, hin::SimilarityKernel::kCosine);

  DaemonOptions options;
  ServingDaemon daemon(std::move(hin), EveryThirdLabeled(MakeTestHin()),
                       options);
  ASSERT_TRUE(daemon.Init().ok());
  const std::uint64_t fingerprint_before =
      daemon.bundles().Acquire().bundle->fingerprint;
  ASSERT_NE(fingerprint_before, expected_fingerprint)
      << "delta does not perturb the operators; the swap pin is vacuous";

  struct Observation {
    std::uint64_t generation;
    std::uint64_t fingerprint;
    bool stale;
  };
  std::vector<std::vector<Observation>> seen(num_clients);
  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < num_clients; ++t) {
    clients.emplace_back([&, t] {
      std::size_t node = static_cast<std::size_t>(t) * 7;
      while (!done.load(std::memory_order_relaxed)) {
        Request request;
        request.kind = RequestKind::kClassify;
        request.node = node % 150;
        node += 13;
        const Result<Response> response = daemon.Execute(request);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        seen[t].push_back(
            {response->generation, response->fingerprint, response->stale});
      }
    });
  }

  ASSERT_TRUE(daemon.BeginUpdate(delta).ok());
  const Status update = daemon.WaitForUpdate();
  done.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();
  ASSERT_TRUE(update.ok()) << update.ToString();

  // Fingerprint honesty: the swapped-in bundle is stamped exactly like a
  // from-scratch rebuild on the mutated network.
  const BundleHolder::View after = daemon.bundles().Acquire();
  EXPECT_FALSE(after.stale);
  EXPECT_EQ(after.bundle->generation, 2u);
  EXPECT_EQ(after.bundle->fingerprint, expected_fingerprint);
  EXPECT_EQ(after.bundle->fingerprint, after.bundle->ops->fingerprint());

  // Never a torn bundle: each observed generation maps to exactly one
  // fingerprint, and both map to a published bundle.
  std::map<std::uint64_t, std::uint64_t> generation_to_fingerprint;
  for (const std::vector<Observation>& per_client : seen) {
    for (const Observation& obs : per_client) {
      const auto [it, inserted] =
          generation_to_fingerprint.emplace(obs.generation, obs.fingerprint);
      EXPECT_EQ(it->second, obs.fingerprint)
          << "generation " << obs.generation << " served two fingerprints";
      // Degradation: stale answers only ever come from the pre-swap
      // generation — a freshly published bundle is by definition not stale.
      if (obs.stale) EXPECT_EQ(obs.generation, 1u);
      EXPECT_TRUE(obs.generation == 1u || obs.generation == 2u);
    }
  }
  ASSERT_TRUE(generation_to_fingerprint.count(1));
  EXPECT_EQ(generation_to_fingerprint[1], fingerprint_before);
  if (generation_to_fingerprint.count(2)) {
    EXPECT_EQ(generation_to_fingerprint[2], expected_fingerprint);
  }
}

INSTANTIATE_TEST_SUITE_P(Clients, HotSwapTest, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "_threads";
                         });

// The `update` verb's own response is deterministically stale: BeginUpdate
// opens the refresh window before the response acquires its view, so the
// client that triggered the refresh is always told the answer describes
// the generation about to be replaced.
TEST(HotSwapTest, UpdateVerbAnswersStaleWithThePreSwapGeneration) {
  hin::Hin hin = MakeTestHin();
  const hin::HinDelta delta = MakeFeatureDelta(hin);
  const std::string path =
      std::string(::testing::TempDir()) + "/hot_swap_feature.delta";
  ASSERT_TRUE(hin::SaveHinDeltaToFile(delta, path).ok());

  DaemonOptions options;
  ServingDaemon daemon(std::move(hin), EveryThirdLabeled(MakeTestHin()),
                       options);
  ASSERT_TRUE(daemon.Init().ok());
  const std::uint64_t fingerprint_before =
      daemon.bundles().Acquire().bundle->fingerprint;

  Request request;
  request.kind = RequestKind::kUpdate;
  request.path = path;
  const Result<Response> ack = daemon.Execute(request);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_TRUE(ack->stale);
  EXPECT_EQ(ack->generation, 1u);
  EXPECT_EQ(ack->fingerprint, fingerprint_before);

  ASSERT_TRUE(daemon.WaitForUpdate().ok());
  Request classify;
  classify.kind = RequestKind::kClassify;
  classify.node = 0;
  const Result<Response> fresh = daemon.Execute(classify);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh->stale);
  EXPECT_EQ(fresh->generation, 2u);
  EXPECT_NE(fresh->fingerprint, fingerprint_before);
}

// A delta that fails validation must be refused synchronously with its
// typed status, close the refresh window, and leave the current bundle
// authoritative (and not stale).
TEST(HotSwapTest, FailedUpdateAbortsTheRefreshWindow) {
  hin::Hin hin = MakeTestHin();
  DaemonOptions options;
  ServingDaemon daemon(std::move(hin), EveryThirdLabeled(MakeTestHin()),
                       options);
  ASSERT_TRUE(daemon.Init().ok());

  hin::HinDelta bad;
  bad.AddLabel(0, 999);  // class id out of range
  const Status refused = daemon.BeginUpdate(bad);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(daemon.bundles().refreshing());

  Request classify;
  classify.kind = RequestKind::kClassify;
  classify.node = 3;
  const Result<Response> response = daemon.Execute(classify);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->stale);
  EXPECT_EQ(response->generation, 1u);
}

}  // namespace
}  // namespace tmark::serve
