// Round-trip and boundary tests for the serving wire protocol
// (serve/protocol.h): framing, request grammar, and response formatting.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tmark/common/status.h"
#include "tmark/serve/protocol.h"

namespace tmark::serve {
namespace {

TEST(FrameTest, WriteThenReadRoundTrips) {
  std::stringstream stream;
  ASSERT_TRUE(WriteFrame(stream, "classify 7").ok());
  ASSERT_TRUE(WriteFrame(stream, "").ok());
  ASSERT_TRUE(WriteFrame(stream, "rank 3 5").ok());
  std::string payload;
  Result<bool> got = ReadFrame(stream, ProtocolLimits{}, &payload);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value());
  EXPECT_EQ(payload, "classify 7");
  got = ReadFrame(stream, ProtocolLimits{}, &payload);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value());
  EXPECT_EQ(payload, "");
  got = ReadFrame(stream, ProtocolLimits{}, &payload);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value());
  EXPECT_EQ(payload, "rank 3 5");
  // Clean EOF at the frame boundary is not an error.
  got = ReadFrame(stream, ProtocolLimits{}, &payload);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
}

TEST(FrameTest, PayloadAtTheLimitPassesOneByteOverFails) {
  ProtocolLimits limits;
  limits.max_frame_bytes = 8;
  std::stringstream at_limit("8\n12345678");
  std::string payload;
  Result<bool> got = ReadFrame(at_limit, limits, &payload);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(payload, "12345678");
  std::stringstream over("9\n123456789");
  got = ReadFrame(over, limits, &payload);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
}

TEST(RequestTest, ParsesEveryVerb) {
  Result<Request> r = ParseRequest("classify 42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, RequestKind::kClassify);
  EXPECT_EQ(r->node, 42u);

  r = ParseRequest("rank 3 5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, RequestKind::kRank);
  EXPECT_EQ(r->node, 3u);
  EXPECT_EQ(r->top_k, 5u);

  r = ParseRequest("topk 0 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, RequestKind::kTopK);

  r = ParseRequest("update /var/deltas/wave 3.delta");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, RequestKind::kUpdate);
  EXPECT_EQ(r->path, "/var/deltas/wave 3.delta");  // spaces survive
}

TEST(RequestTest, FormatParsesBack) {
  for (const char* wire : {"classify 7", "rank 3 5", "topk 12 1"}) {
    const Result<Request> parsed = ParseRequest(wire);
    ASSERT_TRUE(parsed.ok()) << wire;
    EXPECT_EQ(FormatRequest(parsed.value()), wire);
  }
}

TEST(ResponseTest, OkResponseRoundTripsExactly) {
  Response response;
  response.kind = RequestKind::kTopK;
  response.node = 12;
  response.stale = true;
  response.generation = 3;
  response.fingerprint = 0xDEADBEEFCAFEF00DULL;
  response.entries = {{7, 0.25}, {2, 0.125000000000000017}};
  const Result<Response> parsed = ParseResponse(FormatResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, RequestKind::kTopK);
  EXPECT_EQ(parsed->node, 12u);
  EXPECT_TRUE(parsed->stale);
  EXPECT_EQ(parsed->generation, 3u);
  EXPECT_EQ(parsed->fingerprint, 0xDEADBEEFCAFEF00DULL);
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].index, 7u);
  // %.17g preserves doubles bit-exactly through the text protocol.
  EXPECT_EQ(parsed->entries[0].score, 0.25);
  EXPECT_EQ(parsed->entries[1].score, 0.125000000000000017);
}

TEST(ResponseTest, ErrorResponseTransportsTheStatus) {
  const Status refusal =
      ResourceExhaustedError("admission queue full (256 requests waiting)");
  const Result<Response> parsed = ParseResponse(FormatError(refusal));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(parsed.status().message().find("admission queue full"),
            std::string::npos);
}

TEST(ResponseTest, MalformedResponsesAreRejected) {
  for (const char* wire :
       {"", "ok", "ok classify 1 2 3 4", "ok classify 1 0 1",
        "ok bogus 1 0 1 99", "ok classify 1 0 1 99 7:NaN",
        "ok classify 1 0 1 99 7", "error", "error BOGUS_CODE msg"}) {
    EXPECT_FALSE(ParseResponse(wire).ok()) << "accepted: " << wire;
  }
}

}  // namespace
}  // namespace tmark::serve
