#include "tmark/core/tmark.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/core/tensor_rrcc.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/datasets/synthetic_hin.h"

namespace tmark::core {
namespace {

datasets::SyntheticHinConfig EasyConfig(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 120;
  config.class_names = {"A", "B", "C"};
  config.vocab_size = 60;
  config.words_per_node = 15.0;
  config.feature_signal = 0.8;
  config.seed = seed;
  datasets::RelationSpec good;
  good.name = "good";
  good.same_class_prob = 0.9;
  good.edges_per_member = 4.0;
  config.relations.push_back(good);
  datasets::RelationSpec noisy;
  noisy.name = "noisy";
  noisy.same_class_prob = 0.34;
  noisy.edges_per_member = 2.0;
  config.relations.push_back(noisy);
  return config;
}

std::vector<std::size_t> EveryThirdLabeled(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) labeled.push_back(i);
  return labeled;
}

TEST(TMarkConfigTest, BetaIsGammaScaledRestartComplement) {
  TMarkConfig config;
  config.alpha = 0.8;
  config.gamma = 0.5;
  EXPECT_DOUBLE_EQ(config.beta(), 0.1);
}

TEST(TMarkConfigTest, InvalidParametersThrow) {
  TMarkConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(TMarkClassifier{bad}, CheckError);
  bad.alpha = 1.0;
  EXPECT_THROW(TMarkClassifier{bad}, CheckError);
  bad.alpha = 0.5;
  bad.gamma = 1.5;
  EXPECT_THROW(TMarkClassifier{bad}, CheckError);
  bad.gamma = 0.5;
  bad.lambda = -0.1;
  EXPECT_THROW(TMarkClassifier{bad}, CheckError);
}

TEST(TMarkTest, WorkedExamplePredictsHeldOutNodes) {
  // Sec. 4.3: with p1 = DM and p2 = CV labeled, T-Mark must assign p3 to CV
  // and p4 to DM.
  const hin::Hin hin = datasets::MakePaperExample();
  TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  const std::vector<std::size_t> pred = clf.PredictSingleLabel();
  EXPECT_EQ(pred[2], 1u);  // p3 -> CV
  EXPECT_EQ(pred[3], 0u);  // p4 -> DM
}

TEST(TMarkTest, WorkedExampleConfidenceShape) {
  // The paper's stationary x concentrates ~0.9 on the labeled node of each
  // class and gives the matched unlabeled node the remaining visible mass.
  const hin::Hin hin = datasets::MakePaperExample();
  TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  const la::DenseMatrix& conf = clf.Confidences();
  // DM column: p1 strongest, then p4; CV column: p2 strongest, then p3.
  EXPECT_GT(conf.At(0, 0), conf.At(3, 0));
  EXPECT_GT(conf.At(3, 0), conf.At(1, 0));
  EXPECT_GT(conf.At(1, 1), conf.At(2, 1));
  EXPECT_GT(conf.At(2, 1), conf.At(0, 1));
}

TEST(TMarkTest, ConfidenceColumnsAreProbabilityVectors) {
  const hin::Hin hin = datasets::MakePaperExample();
  TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    EXPECT_TRUE(la::IsProbabilityVector(clf.Confidences().Col(c), 1e-8));
    EXPECT_TRUE(la::IsProbabilityVector(clf.LinkImportance().Col(c), 1e-8));
  }
}

TEST(TMarkTest, StationaryVectorsArePositiveOnConnectedHin) {
  // Theorem 2: with irreducible transitions (restart makes the chain
  // ergodic), the stationary x and z are strictly positive.
  const hin::Hin hin =
      datasets::GenerateSyntheticHin(EasyConfig(7));
  TMarkClassifier clf;
  clf.Fit(hin, EveryThirdLabeled(hin));
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
      EXPECT_GT(clf.Confidences().At(i, c), 0.0);
    }
    for (std::size_t k = 0; k < hin.num_relations(); ++k) {
      EXPECT_GT(clf.LinkImportance().At(k, c), 0.0);
    }
  }
}

TEST(TMarkTest, ConvergesWithinBudget) {
  const hin::Hin hin = datasets::GenerateSyntheticHin(EasyConfig(11));
  TMarkClassifier clf;
  clf.Fit(hin, EveryThirdLabeled(hin));
  ASSERT_EQ(clf.Traces().size(), hin.num_classes());
  for (const ConvergenceTrace& trace : clf.Traces()) {
    EXPECT_TRUE(trace.converged);
    // Fig. 10: the residual is (near) zero by iteration ~10.
    EXPECT_LE(trace.residuals.size(), 60u);
    EXPECT_LT(trace.residuals.back(), 1e-8);
  }
}

TEST(TMarkTest, BeatsChanceOnPlantedData) {
  const hin::Hin hin = datasets::GenerateSyntheticHin(EasyConfig(13));
  const std::vector<std::size_t> labeled = EveryThirdLabeled(hin);
  TMarkClassifier clf;
  clf.Fit(hin, labeled);
  const std::vector<std::size_t> pred = clf.PredictSingleLabel();
  std::vector<bool> is_labeled(hin.num_nodes(), false);
  for (std::size_t i : labeled) is_labeled[i] = true;
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
    if (is_labeled[i]) continue;
    ++total;
    if (pred[i] == hin.PrimaryLabel(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.7);
}

TEST(TMarkTest, RanksDiscriminativeRelationAboveNoise) {
  // The planted "good" relation (0.9 affinity) must outrank "noisy" (0.34)
  // for every class — the paper's central claim about link importance.
  const hin::Hin hin = datasets::GenerateSyntheticHin(EasyConfig(17));
  TMarkClassifier clf;
  clf.Fit(hin, EveryThirdLabeled(hin));
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    const std::vector<std::size_t> ranking = clf.RankRelationsForClass(c);
    EXPECT_EQ(ranking[0], 0u) << "class " << c;
  }
}

TEST(TMarkTest, DeterministicAcrossRuns) {
  const hin::Hin hin = datasets::GenerateSyntheticHin(EasyConfig(19));
  const std::vector<std::size_t> labeled = EveryThirdLabeled(hin);
  TMarkClassifier a, b;
  a.Fit(hin, labeled);
  b.Fit(hin, labeled);
  EXPECT_DOUBLE_EQ(a.Confidences().MaxAbsDiff(b.Confidences()), 0.0);
  EXPECT_DOUBLE_EQ(a.LinkImportance().MaxAbsDiff(b.LinkImportance()), 0.0);
}

TEST(TMarkTest, IcaUpdateChangesResult) {
  const hin::Hin hin = datasets::GenerateSyntheticHin(EasyConfig(23));
  const std::vector<std::size_t> labeled = EveryThirdLabeled(hin);
  TMarkConfig with = {};
  TMarkConfig without = {};
  without.ica_update = false;
  TMarkClassifier a(with), b(without);
  a.Fit(hin, labeled);
  b.Fit(hin, labeled);
  EXPECT_GT(a.Confidences().MaxAbsDiff(b.Confidences()), 0.0);
}

TEST(TMarkTest, UnfittedAccessThrows) {
  TMarkClassifier clf;
  EXPECT_THROW(clf.Confidences(), CheckError);
  EXPECT_THROW(clf.LinkImportance(), CheckError);
}

TEST(TMarkTest, FitRequiresLabeledNodes) {
  const hin::Hin hin = datasets::MakePaperExample();
  TMarkClassifier clf;
  EXPECT_THROW(clf.Fit(hin, {}), CheckError);
}

TEST(TensorRrCcTest, NameAndEquivalenceToDisabledIca) {
  const hin::Hin hin = datasets::MakePaperExample();
  TensorRrCcClassifier rrcc;
  EXPECT_EQ(rrcc.Name(), "TensorRrCc");
  rrcc.Fit(hin, datasets::PaperExampleLabeledNodes());

  TMarkConfig config;
  config.ica_update = false;
  TMarkClassifier manual(config);
  manual.Fit(hin, datasets::PaperExampleLabeledNodes());
  EXPECT_DOUBLE_EQ(rrcc.Confidences().MaxAbsDiff(manual.Confidences()), 0.0);
}

TEST(TMarkTest, GammaOneUsesOnlyFeatures) {
  // With gamma = 1 the relational term has zero weight; the example's
  // feature graph alone already separates the two pairs.
  const hin::Hin hin = datasets::MakePaperExample();
  TMarkConfig config;
  config.gamma = 1.0;
  TMarkClassifier clf(config);
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  const std::vector<std::size_t> pred = clf.PredictSingleLabel();
  EXPECT_EQ(pred[2], 1u);
  EXPECT_EQ(pred[3], 0u);
}

TEST(ConvergenceDiagnosticsTest, GeometricDecayRecoversItsRate) {
  // rho_t = 0.5^t decays at exactly rate 0.5.
  std::vector<double> residuals;
  double rho = 1.0;
  for (int t = 0; t < 12; ++t) {
    residuals.push_back(rho);
    rho *= 0.5;
  }
  EXPECT_NEAR(EstimateContractionRate(residuals), 0.5, 1e-12);
  // Last residual 0.5^11 ~ 4.9e-4; reaching 1e-6 at rate 0.5 takes
  // ceil(log(1e-6 / 0.5^11) / log(0.5)) = 9 more iterations.
  EXPECT_DOUBLE_EQ(
      PredictIterationsToTolerance(residuals, 0.5, 1e-6), 9.0);
}

TEST(ConvergenceDiagnosticsTest, DegenerateTracesHaveNoPrediction) {
  EXPECT_EQ(EstimateContractionRate({}), 0.0);
  EXPECT_EQ(EstimateContractionRate({1.0}), 0.0);
  EXPECT_EQ(EstimateContractionRate({1.0, 0.0}), 0.0);
  EXPECT_EQ(PredictIterationsToTolerance({}, 0.5, 1e-6), -1.0);
  // Diverging (rate >= 1) traces cannot predict a finite horizon.
  EXPECT_EQ(PredictIterationsToTolerance({1.0, 2.0}, 2.0, 1e-6), -1.0);
  // Already converged: zero further iterations.
  EXPECT_EQ(PredictIterationsToTolerance({1.0, 1e-9}, 0.5, 1e-6), 0.0);
}

TEST(ConvergenceDiagnosticsTest, RateUsesOnlyTheConsecutivePositiveTail) {
  // A stall (zero residual) in the middle must not poison the estimate:
  // only the ratios after it contribute.
  const std::vector<double> residuals = {5.0, 0.0, 1.0, 0.25, 0.0625};
  EXPECT_NEAR(EstimateContractionRate(residuals), 0.25, 1e-12);
}

TEST(TMarkTest, MultiLabelPredictionIncludesArgmax) {
  const hin::Hin hin = datasets::MakePaperExample();
  TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  const auto sets = clf.PredictMultiLabel(0.5);
  ASSERT_EQ(sets.size(), hin.num_nodes());
  const std::vector<std::size_t> single = clf.PredictSingleLabel();
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_NE(std::find(sets[i].begin(), sets[i].end(), single[i]),
              sets[i].end());
  }
}

}  // namespace
}  // namespace tmark::core
