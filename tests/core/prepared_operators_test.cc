// PreparedOperators / OperatorCache: repeated Fit on an unchanged HIN must
// perform exactly one tensor/similarity build (pinned via the existing
// tensor.transition.builds / hin.similarity.builds counters), a mutated HIN
// must trigger a rebuild, and shared operators must not change results.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "tmark/common/check.h"
#include "tmark/core/prepared_operators.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/obs/metrics.h"

namespace tmark {
namespace {

hin::Hin MakeHin(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 120;
  config.class_names = {"A", "B", "C"};
  config.relations = {{"r0", 0.8, 0.0, 3.0, {}, false},
                      {"r1", 0.5, 0.2, 2.0, {}, true}};
  config.seed = seed;
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> EveryThird(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) labeled.push_back(i);
  return labeled;
}

std::int64_t CounterValue(const std::string& name) {
  const obs::MetricsSnapshot snap = obs::Registry::Instance().Snapshot();
  for (const obs::CounterSnapshot& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

class PreparedOperatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Instance().Reset();
    obs::Registry::Instance().set_enabled(true);
  }
  void TearDown() override {
    obs::Registry::Instance().set_enabled(false);
    obs::Registry::Instance().Reset();
  }
};

TEST_F(PreparedOperatorsTest, RepeatedFitOnUnchangedHinBuildsOnce) {
  const hin::Hin hin = MakeHin(11);
  const std::vector<std::size_t> labeled = EveryThird(hin);
  core::TMarkClassifier clf;

  clf.Fit(hin, labeled);
  EXPECT_EQ(CounterValue("tensor.transition.builds"), 1);
  EXPECT_EQ(CounterValue("hin.similarity.builds"), 1);
  EXPECT_EQ(CounterValue("tmark.fit.operator_cache_hits"), 0);

  clf.Fit(hin, labeled);
  clf.Refit(hin, labeled);
  EXPECT_EQ(CounterValue("tensor.transition.builds"), 1);
  EXPECT_EQ(CounterValue("hin.similarity.builds"), 1);
  EXPECT_EQ(CounterValue("tmark.fit.operator_cache_hits"), 2);
}

TEST_F(PreparedOperatorsTest, MutatedHinTriggersRebuild) {
  const hin::Hin hin_a = MakeHin(11);
  const hin::Hin hin_b = MakeHin(12);  // different content, same shapes
  core::TMarkClassifier clf;

  clf.Fit(hin_a, EveryThird(hin_a));
  EXPECT_EQ(CounterValue("tensor.transition.builds"), 1);

  clf.Fit(hin_b, EveryThird(hin_b));
  EXPECT_EQ(CounterValue("tensor.transition.builds"), 2);
  EXPECT_EQ(CounterValue("hin.similarity.builds"), 2);
  EXPECT_EQ(CounterValue("tmark.fit.operator_cache_hits"), 0);

  clf.Fit(hin_b, EveryThird(hin_b));
  EXPECT_EQ(CounterValue("tensor.transition.builds"), 2);
  EXPECT_EQ(CounterValue("tmark.fit.operator_cache_hits"), 1);
}

TEST_F(PreparedOperatorsTest, FingerprintIsHonestUnderInPlaceMutation) {
  // The cache keys on *content*, not object identity: silently editing a
  // relation's stored weights through the same Hin object must change the
  // fingerprint and force a rebuild on the next Fit — a stale cache here
  // would serve operators for a graph that no longer exists.
  hin::Hin hin = MakeHin(51);
  const std::vector<std::size_t> labeled = EveryThird(hin);
  core::TMarkClassifier clf;
  clf.Fit(hin, labeled);
  EXPECT_EQ(CounterValue("tensor.transition.builds"), 1);

  const std::uint64_t before =
      core::FingerprintOperators(hin, clf.config().similarity);
  // Tests are allowed backdoor access for the mutation; real callers go
  // through HinBuilder and never hold a mutable Hin.
  auto& relation = const_cast<la::SparseMatrix&>(hin.relation(0));
  ASSERT_FALSE(relation.mutable_values().empty());
  relation.mutable_values()[0] *= 2.0;
  const std::uint64_t after =
      core::FingerprintOperators(hin, clf.config().similarity);
  EXPECT_NE(before, after);

  clf.Fit(hin, labeled);
  EXPECT_EQ(CounterValue("tensor.transition.builds"), 2);
  EXPECT_EQ(CounterValue("tmark.fit.operator_cache_hits"), 0);

  // Same story through an explicit OperatorCache.
  core::OperatorCache cache;
  const auto first = cache.GetOrBuild(hin, clf.config().similarity);
  relation.mutable_values()[0] *= 2.0;
  const auto second = cache.GetOrBuild(hin, clf.config().similarity);
  EXPECT_NE(first->fingerprint(), second->fingerprint());
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(PreparedOperatorsTest, CacheSharesOneBuildAcrossClassifiers) {
  const hin::Hin hin = MakeHin(21);
  const std::vector<std::size_t> labeled = EveryThird(hin);
  core::OperatorCache cache;

  core::TMarkClassifier plain;
  plain.Fit(hin, labeled);

  core::TMarkClassifier a;
  core::TMarkClassifier b;
  a.SetPreparedOperators(cache.GetOrBuild(hin, a.config().similarity));
  b.SetPreparedOperators(cache.GetOrBuild(hin, b.config().similarity));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(CounterValue("core.prepared.builds"), 2);  // plain's + cache's
  EXPECT_EQ(CounterValue("core.prepared.cache_hits"), 1);

  a.Fit(hin, labeled);
  b.Fit(hin, labeled);
  // Two fits, zero extra builds — and the same numbers as an isolated fit.
  EXPECT_EQ(CounterValue("tensor.transition.builds"), 2);
  EXPECT_EQ(CounterValue("hin.similarity.builds"), 2);
  EXPECT_DOUBLE_EQ(a.Confidences().MaxAbsDiff(plain.Confidences()), 0.0);
  EXPECT_DOUBLE_EQ(b.Confidences().MaxAbsDiff(plain.Confidences()), 0.0);
}

TEST_F(PreparedOperatorsTest, ExplicitOperatorsOverloadChecksShape) {
  const hin::Hin hin = MakeHin(31);
  const std::vector<std::size_t> labeled = EveryThird(hin);
  const core::PreparedOperators ops =
      core::PreparedOperators::Build(hin, hin::SimilarityKernel::kCosine);

  core::TMarkClassifier direct;
  direct.Fit(hin, ops, labeled);
  core::TMarkClassifier plain;
  plain.Fit(hin, labeled);
  EXPECT_DOUBLE_EQ(direct.Confidences().MaxAbsDiff(plain.Confidences()), 0.0);

  datasets::SyntheticHinConfig other_config;
  other_config.num_nodes = 60;
  other_config.class_names = {"A", "B"};
  other_config.relations = {{"r0", 0.8, 0.0, 3.0, {}, false}};
  other_config.seed = 5;
  const hin::Hin other = datasets::GenerateSyntheticHin(other_config);
  core::TMarkClassifier mismatched;
  EXPECT_THROW(mismatched.Fit(other, ops, EveryThird(other)),
               tmark::CheckError);
}

TEST(FingerprintOperatorsTest, SensitiveToContentAndKernel) {
  const hin::Hin hin = MakeHin(41);
  const hin::Hin same = MakeHin(41);
  const hin::Hin other = MakeHin(42);
  const std::uint64_t base =
      core::FingerprintOperators(hin, hin::SimilarityKernel::kCosine);
  EXPECT_EQ(base,
            core::FingerprintOperators(same, hin::SimilarityKernel::kCosine));
  EXPECT_NE(base,
            core::FingerprintOperators(other, hin::SimilarityKernel::kCosine));
  EXPECT_NE(
      base,
      core::FingerprintOperators(hin, hin::SimilarityKernel::kTfIdfCosine));
}

}  // namespace
}  // namespace tmark
