// Property sweep: Algorithm 1's invariants must hold across the whole
// (alpha, gamma) parameter plane, not just the paper defaults — stationary
// confidences and link importances stay probability vectors, the iteration
// converges within its budget, and Theorem 2's positivity holds.

#include <tuple>

#include <gtest/gtest.h>

#include "tmark/core/tmark.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/hin/similarity_kernel.h"

namespace tmark::core {
namespace {

hin::Hin GridHin() {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 100;
  config.class_names = {"A", "B", "C"};
  config.vocab_size = 60;
  config.words_per_node = 14.0;
  config.feature_signal = 0.7;
  config.seed = 1234;
  datasets::RelationSpec good;
  good.name = "good";
  good.same_class_prob = 0.85;
  good.edges_per_member = 3.0;
  config.relations.push_back(good);
  datasets::RelationSpec weak;
  weak.name = "weak";
  weak.same_class_prob = 0.2;
  weak.edges_per_member = 2.0;
  config.relations.push_back(weak);
  return datasets::GenerateSyntheticHin(config);
}

class TMarkParamGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TMarkParamGridTest, InvariantsHoldAcrossParameterPlane) {
  const auto [alpha, gamma] = GetParam();
  const hin::Hin hin = GridHin();
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 4) labeled.push_back(i);

  TMarkConfig config;
  config.alpha = alpha;
  config.gamma = gamma;
  TMarkClassifier clf(config);
  clf.Fit(hin, labeled);

  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    // Simplex invariants (Theorem 1).
    EXPECT_TRUE(la::IsProbabilityVector(clf.Confidences().Col(c), 1e-7));
    EXPECT_TRUE(la::IsProbabilityVector(clf.LinkImportance().Col(c), 1e-7));
    // Positivity (Theorem 2) — restart makes the chain ergodic.
    for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
      EXPECT_GT(clf.Confidences().At(i, c), 0.0);
    }
    // Convergence within the iteration budget.
    EXPECT_TRUE(clf.Traces()[c].converged)
        << "alpha=" << alpha << " gamma=" << gamma;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaGamma, TMarkParamGridTest,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.8, 0.95),
                       ::testing::Values(0.0, 0.3, 0.6, 1.0)));

class TMarkKernelGridTest
    : public ::testing::TestWithParam<hin::SimilarityKernel> {};

TEST_P(TMarkKernelGridTest, EveryKernelYieldsValidFit) {
  const hin::Hin hin = GridHin();
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 4) labeled.push_back(i);
  TMarkConfig config;
  config.similarity = GetParam();
  TMarkClassifier clf(config);
  clf.Fit(hin, labeled);
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    EXPECT_TRUE(la::IsProbabilityVector(clf.Confidences().Col(c), 1e-7));
    EXPECT_TRUE(clf.Traces()[c].converged);
  }
  // The discriminative relation still outranks the weak one regardless of
  // the feature kernel.
  EXPECT_EQ(clf.RankRelationsForClass(0)[0], 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, TMarkKernelGridTest,
    ::testing::Values(hin::SimilarityKernel::kCosine,
                      hin::SimilarityKernel::kBinaryCosine,
                      hin::SimilarityKernel::kTfIdfCosine,
                      hin::SimilarityKernel::kDotProduct));

}  // namespace
}  // namespace tmark::core
