#include "tmark/core/har.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"

namespace tmark::core {
namespace {

/// Citation-style tensor: many nodes point at node 0 through relation 0;
/// node 1 points at everyone (the arch-hub) through relation 1.
tensor::SparseTensor3 HubAuthorityTensor(std::size_t n) {
  std::vector<tensor::TensorEntry> entries;
  for (std::size_t j = 2; j < n; ++j) {
    // Convention: entry (i, j, k) means j links to i.
    entries.push_back({0, static_cast<std::uint32_t>(j), 0, 1.0});
  }
  for (std::size_t i = 2; i < n; ++i) {
    entries.push_back({static_cast<std::uint32_t>(i), 1, 1, 1.0});
  }
  return tensor::SparseTensor3::FromEntries(n, 2, entries);
}

TEST(HarTest, ConvergesAndStaysOnSimplex) {
  const HarResult result = HarRank(HubAuthorityTensor(10));
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(la::IsProbabilityVector(result.authority, 1e-8));
  EXPECT_TRUE(la::IsProbabilityVector(result.hub, 1e-8));
  EXPECT_TRUE(la::IsProbabilityVector(result.relevance, 1e-8));
}

TEST(HarTest, AuthorityGoesToThePointedAtNode) {
  const HarResult result = HarRank(HubAuthorityTensor(10));
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_GT(result.authority[0], result.authority[i]) << i;
  }
}

TEST(HarTest, HubGoesToThePointingNode) {
  const HarResult result = HarRank(HubAuthorityTensor(10));
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 1) continue;
    EXPECT_GT(result.hub[1], result.hub[i]) << i;
  }
}

TEST(HarTest, ScoresArePositive) {
  const HarResult result = HarRank(HubAuthorityTensor(8));
  for (double v : result.authority) EXPECT_GT(v, 0.0);
  for (double v : result.hub) EXPECT_GT(v, 0.0);
  for (double v : result.relevance) EXPECT_GT(v, 0.0);
}

TEST(HarTest, RelevanceFollowsTraffic) {
  // Relation 0 carries 12 links, relation 1 only 2 -> relation 0 wins.
  std::vector<tensor::TensorEntry> entries;
  for (std::size_t j = 1; j < 13; ++j) {
    entries.push_back({0, static_cast<std::uint32_t>(j), 0, 1.0});
  }
  entries.push_back({1, 2, 1, 1.0});
  entries.push_back({2, 1, 1, 1.0});
  const HarResult result =
      HarRank(tensor::SparseTensor3::FromEntries(13, 2, entries));
  EXPECT_GT(result.relevance[0], result.relevance[1]);
}

TEST(HarTest, SymmetricRingIsUniform) {
  std::vector<tensor::TensorEntry> entries;
  const std::size_t n = 6;
  for (std::size_t j = 0; j < n; ++j) {
    entries.push_back({static_cast<std::uint32_t>((j + 1) % n),
                       static_cast<std::uint32_t>(j), 0, 1.0});
  }
  const HarResult result =
      HarRank(tensor::SparseTensor3::FromEntries(n, 1, entries));
  for (double v : result.authority) EXPECT_NEAR(v, 1.0 / n, 1e-8);
  for (double v : result.hub) EXPECT_NEAR(v, 1.0 / n, 1e-8);
}

TEST(HarTest, InvalidConfigThrows) {
  HarConfig config;
  config.alpha = 1.0;
  EXPECT_THROW(HarRank(HubAuthorityTensor(5), config), CheckError);
}

TEST(HarTest, DeterministicAcrossRuns) {
  const HarResult a = HarRank(HubAuthorityTensor(9));
  const HarResult b = HarRank(HubAuthorityTensor(9));
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(a.authority[i], b.authority[i]);
  }
}

}  // namespace
}  // namespace tmark::core
