// Warm-start (incremental) refitting: Refit must reach the same unique
// fixed point (Theorem 3) while spending fewer iterations when the problem
// barely changed.

#include <gtest/gtest.h>

#include "tmark/core/tmark.h"
#include "tmark/datasets/synthetic_hin.h"

namespace tmark::core {
namespace {

hin::Hin RefitHin(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 150;
  config.class_names = {"A", "B", "C"};
  config.vocab_size = 60;
  config.words_per_node = 15.0;
  config.feature_signal = 0.75;
  config.seed = seed;
  datasets::RelationSpec rel;
  rel.name = "r";
  rel.same_class_prob = 0.85;
  rel.edges_per_member = 3.0;
  config.relations.push_back(rel);
  datasets::RelationSpec rel2;
  rel2.name = "s";
  rel2.same_class_prob = 0.5;
  rel2.edges_per_member = 2.0;
  config.relations.push_back(rel2);
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> Labeled(const hin::Hin& hin, std::size_t step) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += step) labeled.push_back(i);
  return labeled;
}

std::size_t TotalIterations(const TMarkClassifier& clf) {
  std::size_t total = 0;
  for (const ConvergenceTrace& trace : clf.Traces()) {
    total += trace.residuals.size();
  }
  return total;
}

TEST(TMarkRefitTest, SameProblemReachesSameFixedPoint) {
  // With a fixed restart vector (ICA off) the fixed point is unique
  // (Theorem 3), so the warm start must land on exactly the same solution.
  // With the ICA update the accepted set depends on the trajectory, so only
  // a loose agreement is guaranteed; both variants are checked.
  const hin::Hin hin = RefitHin(5);
  const auto labeled = Labeled(hin, 3);

  TMarkConfig fixed;
  fixed.ica_update = false;
  TMarkClassifier exact(fixed);
  exact.Fit(hin, labeled);
  const la::DenseMatrix cold = exact.Confidences();
  exact.Refit(hin, labeled);
  EXPECT_LT(exact.Confidences().MaxAbsDiff(cold), 1e-6);

  TMarkClassifier ica;
  ica.Fit(hin, labeled);
  const la::DenseMatrix ica_cold = ica.Confidences();
  ica.Refit(hin, labeled);
  EXPECT_LT(ica.Confidences().MaxAbsDiff(ica_cold), 0.05);
}

TEST(TMarkRefitTest, WarmStartConvergesFaster) {
  const hin::Hin hin = RefitHin(6);
  const auto labeled = Labeled(hin, 3);
  TMarkConfig fixed;
  fixed.ica_update = false;
  TMarkClassifier clf(fixed);
  clf.Fit(hin, labeled);
  const std::size_t cold_iterations = TotalIterations(clf);
  clf.Refit(hin, labeled);
  const std::size_t warm_iterations = TotalIterations(clf);
  EXPECT_LT(warm_iterations, cold_iterations);
  for (const ConvergenceTrace& trace : clf.Traces()) {
    EXPECT_TRUE(trace.converged);
  }
}

TEST(TMarkRefitTest, HandlesGrowingLabeledSet) {
  const hin::Hin hin = RefitHin(7);
  TMarkConfig fixed;
  fixed.ica_update = false;
  TMarkClassifier clf(fixed);
  clf.Fit(hin, Labeled(hin, 4));
  clf.Refit(hin, Labeled(hin, 2));  // more supervision arrives
  TMarkClassifier cold(fixed);
  cold.Fit(hin, Labeled(hin, 2));
  EXPECT_LT(clf.Confidences().MaxAbsDiff(cold.Confidences()), 1e-6);
}

TEST(TMarkRefitTest, FallsBackToColdFitOnShapeChange) {
  const hin::Hin small = RefitHin(8);
  datasets::SyntheticHinConfig big_config;
  big_config.num_nodes = 200;
  big_config.class_names = {"A", "B", "C"};
  big_config.vocab_size = 60;
  big_config.seed = 9;
  datasets::RelationSpec rel;
  rel.name = "r";
  big_config.relations.push_back(rel);
  const hin::Hin big = datasets::GenerateSyntheticHin(big_config);

  TMarkClassifier clf;
  clf.Fit(small, Labeled(small, 3));
  clf.Refit(big, Labeled(big, 3));  // incompatible shapes -> cold start
  EXPECT_EQ(clf.Confidences().rows(), big.num_nodes());
  for (std::size_t c = 0; c < big.num_classes(); ++c) {
    EXPECT_TRUE(la::IsProbabilityVector(clf.Confidences().Col(c), 1e-7));
  }
}

TEST(TMarkRefitTest, RefitWithoutPriorFitIsColdFit) {
  const hin::Hin hin = RefitHin(10);
  TMarkClassifier warm, cold;
  warm.Refit(hin, Labeled(hin, 3));
  cold.Fit(hin, Labeled(hin, 3));
  EXPECT_DOUBLE_EQ(warm.Confidences().MaxAbsDiff(cold.Confidences()), 0.0);
}

}  // namespace
}  // namespace tmark::core
