#include "tmark/core/multirank.h"

#include <gtest/gtest.h>

#include "tmark/common/random.h"

namespace tmark::core {
namespace {

tensor::SparseTensor3 RingTensor(std::size_t n, std::size_t m) {
  // Each relation is the same directed ring, so everything is symmetric.
  std::vector<tensor::TensorEntry> entries;
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      entries.push_back({static_cast<std::uint32_t>((j + 1) % n),
                         static_cast<std::uint32_t>(j),
                         static_cast<std::uint32_t>(k), 1.0});
    }
  }
  return tensor::SparseTensor3::FromEntries(n, m, entries);
}

TEST(MultiRankTest, ConvergesOnRing) {
  const MultiRankResult result = MultiRank(RingTensor(8, 3));
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(la::IsProbabilityVector(result.node_scores, 1e-8));
  EXPECT_TRUE(la::IsProbabilityVector(result.relation_scores, 1e-8));
}

TEST(MultiRankTest, SymmetricProblemGivesUniformScores) {
  const MultiRankResult result = MultiRank(RingTensor(6, 2));
  for (double v : result.node_scores) EXPECT_NEAR(v, 1.0 / 6.0, 1e-8);
  for (double v : result.relation_scores) EXPECT_NEAR(v, 0.5, 1e-8);
}

TEST(MultiRankTest, DenserRelationRanksHigher) {
  // Relation 0 carries the full ring; relation 1 has a single edge.
  std::vector<tensor::TensorEntry> entries;
  const std::size_t n = 10;
  for (std::size_t j = 0; j < n; ++j) {
    entries.push_back({static_cast<std::uint32_t>((j + 1) % n),
                       static_cast<std::uint32_t>(j), 0, 1.0});
  }
  entries.push_back({1, 0, 1, 1.0});
  const MultiRankResult result =
      MultiRank(tensor::SparseTensor3::FromEntries(n, 2, entries));
  EXPECT_GT(result.relation_scores[0], result.relation_scores[1]);
}

TEST(MultiRankTest, CentralNodeRanksHigher) {
  // Star around node 0 plus a self-loop (the loop breaks the bipartite
  // periodicity so the power iteration converges).
  std::vector<tensor::TensorEntry> entries;
  const std::size_t n = 8;
  for (std::size_t j = 1; j < n; ++j) {
    entries.push_back({0, static_cast<std::uint32_t>(j), 0, 1.0});
    entries.push_back({static_cast<std::uint32_t>(j), 0, 0, 1.0});
  }
  entries.push_back({0, 0, 0, 1.0});
  const MultiRankResult result =
      MultiRank(tensor::SparseTensor3::FromEntries(n, 1, entries));
  for (std::size_t j = 1; j < n; ++j) {
    EXPECT_GT(result.node_scores[0], result.node_scores[j]);
  }
}

TEST(MultiRankTest, ResidualsShrinkOnAperiodicChain) {
  // An asymmetric aperiodic chain takes several iterations to settle; the
  // residual trace must end far below where it started.
  std::vector<tensor::TensorEntry> entries;
  const std::size_t n = 9;
  for (std::size_t j = 0; j < n; ++j) {
    entries.push_back({static_cast<std::uint32_t>((j + 1) % n),
                       static_cast<std::uint32_t>(j), 0, 1.0});
    entries.push_back({static_cast<std::uint32_t>((j + 2) % n),
                       static_cast<std::uint32_t>(j), 1, 1.0});
  }
  entries.push_back({0, 0, 0, 3.0});
  const MultiRankResult result =
      MultiRank(tensor::SparseTensor3::FromEntries(n, 2, entries));
  ASSERT_GE(result.residuals.size(), 2u);
  EXPECT_LT(result.residuals.back(), 0.01 * result.residuals.front());
}

TEST(MultiRankTest, RespectsIterationCap) {
  MultiRankConfig config;
  config.max_iterations = 1;
  config.epsilon = 0.0;  // can never converge in one step
  const MultiRankResult result = MultiRank(RingTensor(6, 2), config);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.residuals.size(), 1u);
}

}  // namespace
}  // namespace tmark::core
