#include "tmark/core/model_io.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/datasets/synthetic_hin.h"

namespace tmark::core {
namespace {

hin::Hin ModelHin(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 80;
  config.class_names = {"A", "B"};
  config.vocab_size = 30;
  config.seed = seed;
  datasets::RelationSpec rel;
  rel.name = "r";
  rel.same_class_prob = 0.85;
  rel.edges_per_member = 3.0;
  config.relations.push_back(rel);
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> Labeled(const hin::Hin& hin) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) out.push_back(i);
  return out;
}

TEST(ModelIoTest, RoundTripPreservesEverything) {
  const hin::Hin hin = ModelHin(1);
  TMarkConfig config;
  config.alpha = 0.85;
  config.gamma = 0.4;
  config.lambda = 0.9;
  config.similarity = hin::SimilarityKernel::kTfIdfCosine;
  TMarkClassifier clf(config);
  clf.Fit(hin, Labeled(hin));

  std::stringstream ss;
  SaveTMarkModel(clf, ss);
  TMarkClassifier back = LoadTMarkModel(ss);

  EXPECT_DOUBLE_EQ(back.config().alpha, 0.85);
  EXPECT_DOUBLE_EQ(back.config().gamma, 0.4);
  EXPECT_DOUBLE_EQ(back.config().lambda, 0.9);
  EXPECT_EQ(back.config().similarity, hin::SimilarityKernel::kTfIdfCosine);
  EXPECT_DOUBLE_EQ(back.Confidences().MaxAbsDiff(clf.Confidences()), 0.0);
  EXPECT_DOUBLE_EQ(back.LinkImportance().MaxAbsDiff(clf.LinkImportance()),
                   0.0);
  EXPECT_EQ(back.PredictSingleLabel(), clf.PredictSingleLabel());
}

TEST(ModelIoTest, LoadedModelServesRankings) {
  const hin::Hin hin = datasets::MakePaperExample();
  TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  std::stringstream ss;
  SaveTMarkModel(clf, ss);
  const TMarkClassifier back = LoadTMarkModel(ss);
  EXPECT_EQ(back.RankRelationsForClass(0), clf.RankRelationsForClass(0));
  EXPECT_EQ(back.RankRelationsForClass(1), clf.RankRelationsForClass(1));
}

TEST(ModelIoTest, LoadedModelWarmStartsRefit) {
  const hin::Hin hin = ModelHin(2);
  TMarkConfig config;
  config.ica_update = false;
  TMarkClassifier clf(config);
  clf.Fit(hin, Labeled(hin));
  std::stringstream ss;
  SaveTMarkModel(clf, ss);

  TMarkClassifier resumed = LoadTMarkModel(ss);
  resumed.Refit(hin, Labeled(hin));
  // Warm start from the stored stationary point: immediate convergence and
  // identical solution.
  std::size_t total = 0;
  for (const ConvergenceTrace& trace : resumed.Traces()) {
    EXPECT_TRUE(trace.converged);
    total += trace.residuals.size();
  }
  EXPECT_LE(total, 2 * hin.num_classes() + 2);
  EXPECT_LT(resumed.Confidences().MaxAbsDiff(clf.Confidences()), 1e-6);
}

TEST(ModelIoTest, FileRoundTrip) {
  const hin::Hin hin = datasets::MakePaperExample();
  TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  const std::string path = ::testing::TempDir() + "/tmark_model_test.tmm";
  ASSERT_TRUE(SaveTMarkModelToFile(clf, path));
  const TMarkClassifier back = LoadTMarkModelFromFile(path);
  EXPECT_DOUBLE_EQ(back.Confidences().MaxAbsDiff(clf.Confidences()), 0.0);
  std::remove(path.c_str());
}

TEST(ModelIoTest, UnfittedModelCannotBeSaved) {
  TMarkClassifier clf;
  std::stringstream ss;
  EXPECT_THROW(SaveTMarkModel(clf, ss), CheckError);
}

TEST(ModelIoTest, MalformedInputsThrow) {
  {
    std::stringstream ss("not a model");
    EXPECT_THROW(LoadTMarkModel(ss), CheckError);
  }
  {
    std::stringstream ss("# tmark-model v1\nalpha 0.8\n");  // no shape
    EXPECT_THROW(LoadTMarkModel(ss), CheckError);
  }
  {
    std::stringstream ss(
        "# tmark-model v1\nshape 2 1 2\nconf 5 0.1 0.2\n");  // row range
    EXPECT_THROW(LoadTMarkModel(ss), CheckError);
  }
  {
    std::stringstream ss(
        "# tmark-model v1\nshape 2 1 2\nconf 0 0.1\n");  // short row
    EXPECT_THROW(LoadTMarkModel(ss), CheckError);
  }
  {
    std::stringstream ss("# tmark-model v1\nbogus 1\n");
    EXPECT_THROW(LoadTMarkModel(ss), CheckError);
  }
  EXPECT_THROW(LoadTMarkModelFromFile("/nonexistent/model.tmm"), CheckError);
}

}  // namespace
}  // namespace tmark::core
