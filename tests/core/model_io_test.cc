#include "tmark/core/model_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/common/status.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/datasets/synthetic_hin.h"

namespace tmark::core {
namespace {

hin::Hin ModelHin(std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 80;
  config.class_names = {"A", "B"};
  config.vocab_size = 30;
  config.seed = seed;
  datasets::RelationSpec rel;
  rel.name = "r";
  rel.same_class_prob = 0.85;
  rel.edges_per_member = 3.0;
  config.relations.push_back(rel);
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> Labeled(const hin::Hin& hin) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) out.push_back(i);
  return out;
}

StatusCode LoadCode(const std::string& content) {
  std::stringstream ss(content);
  return LoadTMarkModel(ss).status().code();
}

TEST(ModelIoTest, RoundTripPreservesEverything) {
  const hin::Hin hin = ModelHin(1);
  TMarkConfig config;
  config.alpha = 0.85;
  config.gamma = 0.4;
  config.lambda = 0.9;
  config.similarity = hin::SimilarityKernel::kTfIdfCosine;
  TMarkClassifier clf(config);
  clf.Fit(hin, Labeled(hin));

  std::stringstream ss;
  SaveTMarkModel(clf, ss);
  Result<TMarkClassifier> loaded = LoadTMarkModel(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TMarkClassifier& back = *loaded;

  EXPECT_DOUBLE_EQ(back.config().alpha, 0.85);
  EXPECT_DOUBLE_EQ(back.config().gamma, 0.4);
  EXPECT_DOUBLE_EQ(back.config().lambda, 0.9);
  EXPECT_EQ(back.config().similarity, hin::SimilarityKernel::kTfIdfCosine);
  EXPECT_DOUBLE_EQ(back.Confidences().MaxAbsDiff(clf.Confidences()), 0.0);
  EXPECT_DOUBLE_EQ(back.LinkImportance().MaxAbsDiff(clf.LinkImportance()),
                   0.0);
  EXPECT_EQ(back.PredictSingleLabel(), clf.PredictSingleLabel());
}

TEST(ModelIoTest, LoadedModelServesRankings) {
  const hin::Hin hin = datasets::MakePaperExample();
  TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  std::stringstream ss;
  SaveTMarkModel(clf, ss);
  const TMarkClassifier back = LoadTMarkModel(ss).value();
  EXPECT_EQ(back.RankRelationsForClass(0), clf.RankRelationsForClass(0));
  EXPECT_EQ(back.RankRelationsForClass(1), clf.RankRelationsForClass(1));
}

TEST(ModelIoTest, LoadedModelWarmStartsRefit) {
  const hin::Hin hin = ModelHin(2);
  TMarkConfig config;
  config.ica_update = false;
  TMarkClassifier clf(config);
  clf.Fit(hin, Labeled(hin));
  std::stringstream ss;
  SaveTMarkModel(clf, ss);

  TMarkClassifier resumed = LoadTMarkModel(ss).value();
  resumed.Refit(hin, Labeled(hin));
  // Warm start from the stored stationary point: immediate convergence and
  // identical solution.
  std::size_t total = 0;
  for (const ConvergenceTrace& trace : resumed.Traces()) {
    EXPECT_TRUE(trace.converged);
    total += trace.residuals.size();
  }
  EXPECT_LE(total, 2 * hin.num_classes() + 2);
  EXPECT_LT(resumed.Confidences().MaxAbsDiff(clf.Confidences()), 1e-6);
}

TEST(ModelIoTest, FileRoundTrip) {
  const hin::Hin hin = datasets::MakePaperExample();
  TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  const std::string path = ::testing::TempDir() + "/tmark_model_test.tmm";
  ASSERT_TRUE(SaveTMarkModelToFile(clf, path).ok());
  Result<TMarkClassifier> back = LoadTMarkModelFromFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_DOUBLE_EQ(back->Confidences().MaxAbsDiff(clf.Confidences()), 0.0);
  std::remove(path.c_str());
}

TEST(ModelIoTest, UnfittedModelCannotBeSaved) {
  // Saving an unfitted model is a caller bug, not untrusted input, so the
  // contract stays a TMARK_CHECK rather than a Status.
  TMarkClassifier clf;
  std::stringstream ss;
  EXPECT_THROW(SaveTMarkModel(clf, ss), CheckError);
}

TEST(ModelIoTest, MalformedInputsAreParseErrors) {
  EXPECT_EQ(LoadCode("not a model"), StatusCode::kParseError);
  EXPECT_EQ(LoadCode("# tmark-model v1\nalpha 0.8\n"),  // no shape
            StatusCode::kParseError);
  EXPECT_EQ(LoadCode("# tmark-model v1\nshape 2 1 2\nconf 5 0.1 0.2\n"),
            StatusCode::kParseError);  // row out of range
  EXPECT_EQ(LoadCode("# tmark-model v1\nshape 2 1 2\nconf 0 0.1\n"),
            StatusCode::kParseError);  // short row
  EXPECT_EQ(LoadCode("# tmark-model v1\nbogus 1\n"), StatusCode::kParseError);
  EXPECT_EQ(LoadCode("# tmark-model v1\nshape 2 1 2\nconf 0 0.1 nan\n"),
            StatusCode::kParseError);  // non-finite value
  EXPECT_EQ(LoadCode("# tmark-model v1\nshape 2 1 2\nkernel warp\n"),
            StatusCode::kParseError);  // unknown kernel
  EXPECT_EQ(LoadCode("# tmark-model v1\nshape 2 1 2\nica maybe\n"),
            StatusCode::kParseError);
}

TEST(ModelIoTest, HyperParametersOutsideUnitIntervalAreRejected) {
  for (const char* line : {"alpha 1.5", "alpha -0.1", "gamma 2", "gamma nan",
                           "lambda 1e300", "lambda -1"}) {
    EXPECT_EQ(LoadCode(std::string("# tmark-model v1\nshape 2 1 2\n") + line +
                       "\n"),
              StatusCode::kParseError)
        << line;
  }
}

TEST(ModelIoTest, RowsBeforeShapeAreFailedPrecondition) {
  EXPECT_EQ(LoadCode("# tmark-model v1\nconf 0 0.1 0.2\nshape 2 1 2\n"),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(LoadCode("# tmark-model v1\nlink 0 0.5 0.5\nshape 2 1 2\n"),
            StatusCode::kFailedPrecondition);
}

TEST(ModelIoTest, DuplicateRowsAndDirectivesAreRejected) {
  EXPECT_EQ(LoadCode("# tmark-model v1\nshape 2 1 2\n"
                     "conf 0 0.1 0.2\nconf 0 0.3 0.4\n"),
            StatusCode::kParseError);
  EXPECT_EQ(LoadCode("# tmark-model v1\nalpha 0.5\nalpha 0.6\nshape 2 1 2\n"),
            StatusCode::kParseError);
  EXPECT_EQ(LoadCode("# tmark-model v1\nshape 2 1 2\nshape 2 1 2\n"),
            StatusCode::kParseError);
}

TEST(ModelIoTest, HostileShapeIsRejectedBeforeAllocation) {
  // n*q and m*q are capped; a hostile shape line must fail fast instead of
  // attempting a multi-terabyte allocation.
  EXPECT_EQ(LoadCode("# tmark-model v1\nshape 999999999 1 999999999\n"),
            StatusCode::kParseError);
  EXPECT_EQ(LoadCode("# tmark-model v1\nshape 18446744073709551615 1 2\n"),
            StatusCode::kParseError);
}

TEST(ModelIoTest, MissingFileIsNotFound) {
  const Result<TMarkClassifier> result =
      LoadTMarkModelFromFile("/nonexistent/model.tmm");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ModelIoTest, FileParseErrorsCarryPathContext) {
  const std::string path = ::testing::TempDir() + "/tmark_model_corrupt.tmm";
  {
    std::ofstream out(path);
    out << "# tmark-model v1\nbogus 1\n";
  }
  const Result<TMarkClassifier> result = LoadTMarkModelFromFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tmark::core
