// Determinism integration tests: a T-Mark fit must produce bit-identical
// confidences, link importances, and residual traces at every thread count
// (TMARK_NUM_THREADS=1 vs 8), and the chunked scatter kernels must be
// exactly reproducible across thread counts on inputs large enough to
// split into multiple chunks.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "tmark/common/random.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/la/sparse_matrix.h"
#include "tmark/parallel/thread_pool.h"

namespace tmark {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::SetNumThreads(0); }
};

hin::Hin MakeTestHin() {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 220;
  config.class_names = {"A", "B", "C", "D"};
  config.relations = {{"r0", 0.85, 0.0, 3.0, {}, false},
                      {"r1", 0.6, 0.2, 2.0, {}, true}};
  config.seed = 99;
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> EveryThird(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) labeled.push_back(i);
  return labeled;
}

TEST(ParallelFitTest, SerialAndParallelFitsAreBitIdentical) {
  ThreadCountGuard guard;
  const hin::Hin hin = MakeTestHin();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  parallel::SetNumThreads(1);
  core::TMarkClassifier serial_clf;
  serial_clf.Fit(hin, labeled);

  parallel::SetNumThreads(8);
  core::TMarkClassifier parallel_clf;
  parallel_clf.Fit(hin, labeled);

  EXPECT_DOUBLE_EQ(
      serial_clf.Confidences().MaxAbsDiff(parallel_clf.Confidences()), 0.0);
  EXPECT_DOUBLE_EQ(
      serial_clf.LinkImportance().MaxAbsDiff(parallel_clf.LinkImportance()),
      0.0);
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    EXPECT_EQ(serial_clf.RankRelationsForClass(c),
              parallel_clf.RankRelationsForClass(c));
  }

  ASSERT_EQ(serial_clf.Traces().size(), parallel_clf.Traces().size());
  for (std::size_t c = 0; c < serial_clf.Traces().size(); ++c) {
    const core::ConvergenceTrace& s = serial_clf.Traces()[c];
    const core::ConvergenceTrace& p = parallel_clf.Traces()[c];
    EXPECT_EQ(s.class_index, c);
    EXPECT_EQ(p.class_index, c);
    EXPECT_EQ(s.converged, p.converged);
    ASSERT_EQ(s.residuals.size(), p.residuals.size());
    for (std::size_t t = 0; t < s.residuals.size(); ++t) {
      EXPECT_EQ(s.residuals[t], p.residuals[t]);  // exact, not approximate
    }
  }
}

TEST(ParallelFitTest, ScatterKernelIsBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  // Large enough that TransposeMatVec splits into several chunks.
  constexpr std::size_t kRows = 40000;
  constexpr std::size_t kCols = 900;
  Rng rng(7);
  std::vector<la::Triplet> trips;
  trips.reserve(kRows * 3);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (int e = 0; e < 3; ++e) {
      trips.push_back({static_cast<std::uint32_t>(r),
                       static_cast<std::uint32_t>(rng.UniformInt(kCols)),
                       rng.Uniform()});
    }
  }
  const la::SparseMatrix m =
      la::SparseMatrix::FromTriplets(kRows, kCols, std::move(trips));
  la::Vector x(kRows);
  for (double& v : x) v = rng.Uniform() * 2.0 - 1.0;

  parallel::SetNumThreads(1);
  const la::Vector serial = m.TransposeMatVec(x);
  const double serial_bilinear = m.Bilinear(x, la::Vector(kCols, 0.5));
  parallel::SetNumThreads(8);
  const la::Vector parallel8 = m.TransposeMatVec(x);
  const double parallel_bilinear = m.Bilinear(x, la::Vector(kCols, 0.5));

  ASSERT_EQ(serial.size(), parallel8.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    EXPECT_EQ(serial[c], parallel8[c]) << "column " << c;
  }
  EXPECT_EQ(serial_bilinear, parallel_bilinear);
}

}  // namespace
}  // namespace tmark
