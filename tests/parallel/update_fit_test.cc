// Incremental-update honesty tests (docs/PERFORMANCE.md "Incremental
// updates"), run across thread counts and — via the `sanitize` ctest label
// this path carries — under TSAN/ASAN builds:
//
//   * a PreparedOperators bundle patched through ApplyDelta is bit-identical
//     to a from-scratch rebuild on the mutated HIN: same fingerprint, same
//     CSR bytes, same merged-view arrays (shard plans excluded — they are
//     correctness-neutral work assignment);
//   * TMarkClassifier::Update's warm-started refresh lands within 1e-10 of
//     a cold fit on the mutated network (the fixed point is unique —
//     Theorem 3 — so warm and cold runs differ only by their stopping
//     points);
//   * a stale operator cache cannot survive a mutation that bypassed
//     Update: the fingerprint check forces a rebuild.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "tmark/core/prepared_operators.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/hin/hin.h"
#include "tmark/hin/hin_delta.h"
#include "tmark/la/sparse_matrix.h"
#include "tmark/parallel/thread_pool.h"
#include "tmark/tensor/sparse_tensor3.h"

namespace tmark {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::SetNumThreads(0); }
};

hin::Hin MakeTestHin() {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 240;
  config.class_names = {"A", "B", "C"};
  config.relations = {{"r0", 0.85, 0.0, 3.0, {}, false},
                      {"r1", 0.6, 0.2, 2.0, {}, true}};
  config.seed = 123;
  return datasets::GenerateSyntheticHin(config);
}

// A mixed batch touching both relations and the features: one add, one
// remove, one reweight, one feature-row replacement, one label add.
hin::HinDelta MakeDelta(const hin::Hin& hin) {
  hin::HinDelta delta;
  const la::SparseMatrix& r0 = hin.relation(0);
  // First two stored entries of relation 0: reweight one, remove the other.
  std::vector<std::pair<std::size_t, std::size_t>> stored;  // (dst, src)
  for (std::size_t i = 0; i < r0.rows() && stored.size() < 2; ++i) {
    for (std::size_t p = r0.row_ptr()[i];
         p < r0.row_ptr()[i + 1] && stored.size() < 2; ++p) {
      stored.emplace_back(i, r0.col_idx()[p]);
    }
  }
  delta.ReweightEdge(0, stored[0].second, stored[0].first, 2.75);
  delta.RemoveEdge(0, stored[1].second, stored[1].first);
  // An absent (dst, src) pair in relation 1 to add.
  const la::SparseMatrix& r1 = hin.relation(1);
  for (std::size_t i = 0; i < r1.rows(); ++i) {
    const std::size_t j = (i + 7) % hin.num_nodes();
    if (i != j && r1.FindEntry(i, j) == la::SparseMatrix::npos) {
      delta.AddEdge(1, j, i, 1.5);
      break;
    }
  }
  delta.UpdateFeatureRow(3, {{0, 2.5}, {5, 0.75}, {11, 1.0}});
  // A class node 5 does not already carry.
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    if (!hin.HasLabel(5, c)) {
      delta.AddLabel(5, c);
      break;
    }
  }
  return delta;
}

std::vector<std::size_t> EveryThirdLabeled(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) {
    if (!hin.labels(i).empty()) labeled.push_back(i);
  }
  return labeled;
}

void ExpectMatrixBytesEqual(const la::SparseMatrix& a,
                            const la::SparseMatrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  EXPECT_EQ(a.row_ptr().ToVector(), b.row_ptr().ToVector()) << what;
  EXPECT_EQ(a.col_idx(), b.col_idx()) << what;
  EXPECT_EQ(a.values(), b.values()) << what;  // exact, not approximate
}

void ExpectTensorBytesEqual(const tensor::SparseTensor3& a,
                            const tensor::SparseTensor3& b, const char* what) {
  ASSERT_EQ(a.num_relations(), b.num_relations()) << what;
  for (std::size_t k = 0; k < a.num_relations(); ++k) {
    ExpectMatrixBytesEqual(a.Slice(k), b.Slice(k), what);
  }
  const tensor::SparseTensor3::MergedView& ma = a.merged_view();
  const tensor::SparseTensor3::MergedView& mb = b.merged_view();
  EXPECT_EQ(ma.row_ptr.ToVector(), mb.row_ptr.ToVector()) << what;
  EXPECT_EQ(ma.seg_k, mb.seg_k) << what;
  EXPECT_EQ(ma.seg_end.ToVector(), mb.seg_end.ToVector()) << what;
  EXPECT_EQ(ma.col, mb.col) << what;
  EXPECT_EQ(ma.val, mb.val) << what;
  EXPECT_EQ(a.MergedViewIndexBits(), b.MergedViewIndexBits()) << what;
}

TEST(UpdateFitTest, PatchedOperatorsBitIdenticalToRebuild) {
  ThreadCountGuard guard;
  for (const int threads : {1, 4}) {
    parallel::SetNumThreads(threads);
    hin::Hin hin = MakeTestHin();
    core::PreparedOperators patched =
        core::PreparedOperators::Build(hin, hin::SimilarityKernel::kCosine);
    const hin::HinDelta delta = MakeDelta(hin);
    ASSERT_TRUE(hin.ApplyDelta(delta).ok());
    patched.ApplyDelta(hin, delta);
    const core::PreparedOperators rebuilt =
        core::PreparedOperators::Build(hin, hin::SimilarityKernel::kCosine);

    EXPECT_EQ(patched.fingerprint(), rebuilt.fingerprint());
    EXPECT_EQ(patched.fingerprint(),
              core::FingerprintOperators(hin, hin::SimilarityKernel::kCosine));
    ExpectTensorBytesEqual(patched.tensors().o_stored(),
                           rebuilt.tensors().o_stored(), "O");
    ExpectTensorBytesEqual(patched.tensors().r_stored(),
                           rebuilt.tensors().r_stored(), "R");
    EXPECT_EQ(patched.tensors().dangling_columns(),
              rebuilt.tensors().dangling_columns());
    ExpectMatrixBytesEqual(patched.tensors().linked_mask(),
                           rebuilt.tensors().linked_mask(), "linked_mask");

    // The similarity operator exposes no raw arrays; bit-exact agreement of
    // W x on a deterministic probe vector (plus the dangling list) pins it.
    EXPECT_EQ(patched.similarity().dangling_nodes(),
              rebuilt.similarity().dangling_nodes());
    la::Vector probe(hin.num_nodes());
    for (std::size_t i = 0; i < probe.size(); ++i) {
      probe[i] = 1.0 / static_cast<double>(i + 2);
    }
    const la::Vector wp = patched.similarity().Apply(probe);
    const la::Vector wr = rebuilt.similarity().Apply(probe);
    for (std::size_t i = 0; i < wp.size(); ++i) {
      ASSERT_EQ(wp[i], wr[i]) << "W row " << i;
    }
  }
}

TEST(UpdateFitTest, WarmUpdateMatchesColdFitWithinTolerance) {
  ThreadCountGuard guard;
  core::TMarkConfig config;
  config.ica_update = false;  // fixed restart set -> unique fixed point
  config.epsilon = 1e-13;
  config.max_iterations = 500;
  for (const int threads : {1, 4}) {
    parallel::SetNumThreads(threads);
    hin::Hin hin = MakeTestHin();
    const std::vector<std::size_t> labeled = EveryThirdLabeled(hin);

    core::TMarkClassifier warm(config);
    warm.Fit(hin, labeled);
    const hin::HinDelta delta = MakeDelta(hin);
    ASSERT_TRUE(warm.Update(&hin, delta, labeled).ok());

    core::TMarkClassifier cold(config);
    cold.Fit(hin, labeled);

    EXPECT_LE(warm.Confidences().MaxAbsDiff(cold.Confidences()), 1e-10);
    EXPECT_LE(warm.LinkImportance().MaxAbsDiff(cold.LinkImportance()), 1e-10);
  }
}

TEST(UpdateFitTest, UpdatePatchesOperatorsInsteadOfRebuilding) {
  ThreadCountGuard guard;
  parallel::SetNumThreads(4);
  core::TMarkConfig config;
  config.ica_update = false;
  hin::Hin hin = MakeTestHin();
  const std::vector<std::size_t> labeled = EveryThirdLabeled(hin);
  core::TMarkClassifier clf(config);
  clf.Fit(hin, labeled);

  // Hold a second reference: Update must copy-on-write, leaving this
  // pre-mutation bundle untouched for its other holder.
  const std::shared_ptr<const core::PreparedOperators> shared =
      clf.prepared_operators();
  const std::uint64_t fp_before = shared->fingerprint();

  const hin::HinDelta delta = MakeDelta(hin);
  ASSERT_TRUE(clf.Update(&hin, delta, labeled).ok());

  EXPECT_EQ(shared->fingerprint(), fp_before);
  ASSERT_NE(clf.prepared_operators(), nullptr);
  EXPECT_NE(clf.prepared_operators().get(), shared.get());
  EXPECT_EQ(clf.prepared_operators()->fingerprint(),
            core::FingerprintOperators(hin, config.similarity));
}

// Delta-aware retirement hints (core/tmark.h): a label-only wave that
// touches no training node leaves every restart vector — and therefore
// every fixed point — untouched. Update must keep the previous stationary
// columns bitwise and never enter the iteration loop (empty residual
// traces), with the ICA update ON, where the hint analysis has to reason
// about the acceptance cutoff.
TEST(UpdateFitTest, LabelWaveOffTheTrainingSetRetiresEveryClass) {
  ThreadCountGuard guard;
  for (const int threads : {1, 4}) {
    parallel::SetNumThreads(threads);
    hin::Hin hin = MakeTestHin();
    const std::vector<std::size_t> labeled = EveryThirdLabeled(hin);
    core::TMarkClassifier clf;  // defaults: ica_update = true, batched
    clf.Fit(hin, labeled);
    for (const core::ConvergenceTrace& trace : clf.Traces()) {
      ASSERT_TRUE(trace.converged);
    }
    const la::DenseMatrix before_x = clf.Confidences();
    const la::DenseMatrix before_z = clf.LinkImportance();

    // Nodes 1 and 2 are never in EveryThirdLabeled (it steps by 3 from 0).
    hin::HinDelta delta;
    for (const std::size_t node : {std::size_t{1}, std::size_t{2}}) {
      for (std::size_t c = 0; c < hin.num_classes(); ++c) {
        if (!hin.HasLabel(node, c)) {
          delta.AddLabel(node, c);
          break;
        }
      }
    }
    ASSERT_EQ(delta.label_adds().size(), 2u);
    ASSERT_TRUE(clf.Update(&hin, delta, labeled).ok());

    EXPECT_DOUBLE_EQ(clf.Confidences().MaxAbsDiff(before_x), 0.0);
    EXPECT_DOUBLE_EQ(clf.LinkImportance().MaxAbsDiff(before_z), 0.0);
    for (const core::ConvergenceTrace& trace : clf.Traces()) {
      EXPECT_TRUE(trace.converged) << "class " << trace.class_index;
      EXPECT_TRUE(trace.residuals.empty())
          << "class " << trace.class_index << " iterated after a no-op wave";
    }
  }
}

// A label landing on a node that then joins the training set perturbs
// exactly the classes that node carries: those iterate, the rest retire
// with empty traces, and the result still agrees with a cold fit on the
// mutated network (unique fixed point, Theorem 3).
TEST(UpdateFitTest, LabelJoiningTrainingSetIteratesOnlyAffectedClasses) {
  ThreadCountGuard guard;
  core::TMarkConfig config;
  config.ica_update = false;  // fixed restart set -> unique fixed point
  config.epsilon = 1e-13;
  config.max_iterations = 500;
  for (const int threads : {1, 4}) {
    parallel::SetNumThreads(threads);
    hin::Hin hin = MakeTestHin();
    const std::vector<std::size_t> labeled = EveryThirdLabeled(hin);
    core::TMarkClassifier warm(config);
    warm.Fit(hin, labeled);
    for (const core::ConvergenceTrace& trace : warm.Traces()) {
      ASSERT_TRUE(trace.converged);
    }

    // Node 7 is outside the training set; give it one new class and then
    // add it to the training set for the refresh.
    const std::size_t joiner = 7;
    hin::HinDelta delta;
    for (std::size_t c = 0; c < hin.num_classes(); ++c) {
      if (!hin.HasLabel(joiner, c)) {
        delta.AddLabel(joiner, c);
        break;
      }
    }
    ASSERT_EQ(delta.label_adds().size(), 1u);
    std::vector<std::size_t> grown = labeled;
    grown.push_back(joiner);
    ASSERT_TRUE(warm.Update(&hin, delta, grown).ok());

    for (const core::ConvergenceTrace& trace : warm.Traces()) {
      if (hin.HasLabel(joiner, trace.class_index)) {
        EXPECT_FALSE(trace.residuals.empty())
            << "class " << trace.class_index
            << " gained a restart node but did not iterate";
      } else {
        EXPECT_TRUE(trace.converged);
        EXPECT_TRUE(trace.residuals.empty())
            << "class " << trace.class_index
            << " iterated though its restart vector is unchanged";
      }
    }

    core::TMarkClassifier cold(config);
    cold.Fit(hin, grown);
    EXPECT_LE(warm.Confidences().MaxAbsDiff(cold.Confidences()), 1e-10);
    EXPECT_LE(warm.LinkImportance().MaxAbsDiff(cold.LinkImportance()), 1e-10);
  }
}

TEST(UpdateFitTest, StaleCacheCannotSurviveOutOfBandMutation) {
  ThreadCountGuard guard;
  parallel::SetNumThreads(4);
  core::TMarkConfig config;
  config.ica_update = false;
  hin::Hin hin = MakeTestHin();
  const std::vector<std::size_t> labeled = EveryThirdLabeled(hin);
  core::TMarkClassifier clf(config);
  clf.Fit(hin, labeled);
  const std::shared_ptr<const core::PreparedOperators> before =
      clf.prepared_operators();

  // Mutate the network behind the classifier's back (no Update call). The
  // next Fit must notice the fingerprint mismatch and rebuild.
  ASSERT_TRUE(hin.ApplyDelta(MakeDelta(hin)).ok());
  clf.Fit(hin, labeled);
  ASSERT_NE(clf.prepared_operators(), nullptr);
  EXPECT_NE(clf.prepared_operators().get(), before.get());
  EXPECT_NE(clf.prepared_operators()->fingerprint(), before->fingerprint());

  // And the rebuilt-path fit equals a from-scratch classifier bit for bit.
  core::TMarkClassifier fresh(config);
  fresh.Fit(hin, labeled);
  EXPECT_DOUBLE_EQ(clf.Confidences().MaxAbsDiff(fresh.Confidences()), 0.0);
  EXPECT_DOUBLE_EQ(
      clf.LinkImportance().MaxAbsDiff(fresh.LinkImportance()), 0.0);
}

}  // namespace
}  // namespace tmark
