// Unit tests for the tmark::parallel subsystem: task coverage, exception
// propagation, nested-call safety, empty/single-element ranges, and the
// determinism of the fixed-chunk partitioning across thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "tmark/common/random.h"
#include "tmark/parallel/parallel_for.h"
#include "tmark/parallel/thread_pool.h"

namespace tmark::parallel {
namespace {

// Restores the default thread count when a test overrides it.
struct ThreadCountGuard {
  ~ThreadCountGuard() { SetNumThreads(0); }
};

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 257;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.Run(kTasks, [&](std::size_t t) { hits[t].fetch_add(1); });
  for (std::size_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

TEST(ThreadPoolTest, ZeroAndOneTaskBatches) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.Run(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.Run(1, [&](std::size_t t) {
    EXPECT_EQ(t, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  pool.Run(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.Run(64,
                        [](std::size_t t) {
                          if (t % 7 == 3) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  std::atomic<int> total{0};
  pool.Run(16, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPoolTest, NestedRunsExecuteInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.Run(8, [&](std::size_t) {
    pool.Run(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ParseThreadCountTest, AcceptsOnlyPositiveIntegers) {
  EXPECT_EQ(ParseThreadCount(nullptr), 0u);
  EXPECT_EQ(ParseThreadCount(""), 0u);
  EXPECT_EQ(ParseThreadCount("abc"), 0u);
  EXPECT_EQ(ParseThreadCount("-3"), 0u);
  EXPECT_EQ(ParseThreadCount("3x"), 0u);
  EXPECT_EQ(ParseThreadCount("0"), 0u);
  EXPECT_EQ(ParseThreadCount("8"), 8u);
  EXPECT_EQ(ParseThreadCount("999999999999"), kMaxConfigurableThreads);
}

TEST(NumThreadsTest, SetAndRestoreDefault) {
  ThreadCountGuard guard;
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3u);
  EXPECT_EQ(GlobalPool().num_threads(), 3u);
  SetNumThreads(0);
  EXPECT_GE(NumThreads(), 1u);
}

TEST(NumFixedChunksTest, EdgesAndCap) {
  EXPECT_EQ(NumFixedChunks(0, 64), 0u);
  EXPECT_EQ(NumFixedChunks(1, 64), 1u);
  EXPECT_EQ(NumFixedChunks(64, 64), 1u);
  EXPECT_EQ(NumFixedChunks(65, 64), 2u);
  EXPECT_EQ(NumFixedChunks(1000000, 1), kDefaultMaxChunks);
  EXPECT_EQ(NumFixedChunks(1000000, 1, 16), 16u);
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  constexpr std::size_t kCount = 10000;
  std::vector<int> hits(kCount, 0);
  ParallelFor(kCount, /*grain=*/128, [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ParallelForTest, EmptyAndSingleElementRanges) {
  std::size_t calls = 0;
  ParallelFor(0, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  ParallelFor(1, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
  ParallelForRanges(0, 64, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelReduceTest, BitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  // Values whose sum is order-sensitive in floating point.
  Rng rng(123);
  std::vector<double> values(50000);
  for (double& v : values) v = rng.Uniform() * 1e6 - 5e5;
  auto sum = [&] {
    return ParallelReduce(
        values.size(), /*grain=*/1024, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  SetNumThreads(1);
  const double serial = sum();
  SetNumThreads(8);
  const double parallel8 = sum();
  SetNumThreads(3);
  const double parallel3 = sum();
  // Exact equality: the chunk layout is a function of size/grain only.
  EXPECT_EQ(serial, parallel8);
  EXPECT_EQ(serial, parallel3);
}

}  // namespace
}  // namespace tmark::parallel
