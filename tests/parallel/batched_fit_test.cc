// Golden bit-identity tests for the batched fit engine: a batched Fit must
// equal the per-class Fit (which parallel_fit_test.cc already pins to the
// seed serial results) bit for bit — exact ==, no tolerance — across every
// similarity kernel, thread counts {1, 4}, warm starts, ICA on/off, and
// iteration-capped (unconverged) runs.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "tmark/core/tmark.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/hin/hin_builder.h"
#include "tmark/hin/similarity_kernel.h"
#include "tmark/parallel/thread_pool.h"

namespace tmark {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::SetNumThreads(0); }
};

hin::Hin MakeTestHin() {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 220;
  config.class_names = {"A", "B", "C", "D"};
  config.relations = {{"r0", 0.85, 0.0, 3.0, {}, false},
                      {"r1", 0.6, 0.2, 2.0, {}, true}};
  config.seed = 99;
  return datasets::GenerateSyntheticHin(config);
}

// A HIN with exactly q classes. The synthetic generator requires q >= 2, so
// the single-class case (pure scalar-tail panel width) is built by hand:
// a ring + chords over two relations with simple planted features.
hin::Hin MakeHinWithClasses(std::size_t q) {
  if (q >= 2) {
    datasets::SyntheticHinConfig gen;
    gen.num_nodes = 150;
    for (std::size_t c = 0; c < q; ++c) {
      gen.class_names.push_back("class" + std::to_string(c));
    }
    gen.relations = {{"r0", 0.85, 0.0, 3.0, {}, false},
                     {"r1", 0.6, 0.2, 2.0, {}, true}};
    gen.seed = 400 + q;
    return datasets::GenerateSyntheticHin(gen);
  }
  constexpr std::size_t n = 60;
  constexpr std::size_t d = 12;
  hin::HinBuilder builder(n, d);
  builder.AddClass("only");
  const std::size_t r0 = builder.AddRelation("ring");
  const std::size_t r1 = builder.AddRelation("chords");
  for (std::size_t i = 0; i < n; ++i) {
    builder.AddUndirectedEdge(r0, i, (i + 1) % n);
    builder.AddDirectedEdge(r1, i, (i * 7 + 3) % n, 1.0 + (i % 3) * 0.5);
    builder.AddFeature(i, i % d, 2.0);
    builder.AddFeature(i, (i * 5 + 1) % d, 1.0);
    builder.SetLabel(i, 0);
  }
  return std::move(builder).Build();
}

std::vector<std::size_t> EveryThird(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) labeled.push_back(i);
  return labeled;
}

struct FitOutputs {
  la::DenseMatrix confidences;
  la::DenseMatrix link_importance;
  std::vector<core::ConvergenceTrace> traces;
  std::vector<std::vector<std::size_t>> rankings;
};

FitOutputs RunFit(const hin::Hin& hin, const std::vector<std::size_t>& labeled,
                  const core::TMarkConfig& config, int threads,
                  bool warm_refit) {
  parallel::SetNumThreads(threads);
  core::TMarkClassifier clf(config);
  clf.Fit(hin, labeled);
  if (warm_refit) clf.Refit(hin, labeled);
  FitOutputs out{clf.Confidences(), clf.LinkImportance(), clf.Traces(), {}};
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    out.rankings.push_back(clf.RankRelationsForClass(c));
  }
  return out;
}

void ExpectBitIdentical(const FitOutputs& golden, const FitOutputs& other) {
  EXPECT_DOUBLE_EQ(golden.confidences.MaxAbsDiff(other.confidences), 0.0);
  EXPECT_DOUBLE_EQ(golden.link_importance.MaxAbsDiff(other.link_importance),
                   0.0);
  EXPECT_EQ(golden.rankings, other.rankings);
  ASSERT_EQ(golden.traces.size(), other.traces.size());
  for (std::size_t c = 0; c < golden.traces.size(); ++c) {
    const core::ConvergenceTrace& g = golden.traces[c];
    const core::ConvergenceTrace& o = other.traces[c];
    EXPECT_EQ(g.class_index, o.class_index);
    EXPECT_EQ(g.converged, o.converged);
    ASSERT_EQ(g.residuals.size(), o.residuals.size()) << "class " << c;
    for (std::size_t t = 0; t < g.residuals.size(); ++t) {
      EXPECT_EQ(g.residuals[t], o.residuals[t])  // exact, not approximate
          << "class " << c << " iteration " << t;
    }
  }
}

TEST(BatchedFitTest, MatchesPerClassAcrossKernelsAndThreadCounts) {
  ThreadCountGuard guard;
  const hin::Hin hin = MakeTestHin();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  for (const hin::SimilarityKernel kernel :
       {hin::SimilarityKernel::kCosine, hin::SimilarityKernel::kBinaryCosine,
        hin::SimilarityKernel::kTfIdfCosine,
        hin::SimilarityKernel::kDotProduct}) {
    SCOPED_TRACE("kernel " + hin::ToString(kernel));
    core::TMarkConfig per_class;
    per_class.similarity = kernel;
    per_class.fit_mode = core::FitMode::kPerClass;
    core::TMarkConfig batched = per_class;
    batched.fit_mode = core::FitMode::kBatched;

    const FitOutputs golden = RunFit(hin, labeled, per_class, 1, false);
    for (const int threads : {1, 4}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      ExpectBitIdentical(golden, RunFit(hin, labeled, batched, threads, false));
    }
    // The per-class engine at 4 threads must also still hit the golden
    // serial results (regression guard alongside parallel_fit_test.cc).
    ExpectBitIdentical(golden, RunFit(hin, labeled, per_class, 4, false));
  }
}

TEST(BatchedFitTest, MatchesPerClassWithIcaDisabled) {
  ThreadCountGuard guard;
  const hin::Hin hin = MakeTestHin();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  core::TMarkConfig per_class;
  per_class.ica_update = false;  // TensorRrCc mode: no restart refresh.
  per_class.fit_mode = core::FitMode::kPerClass;
  core::TMarkConfig batched = per_class;
  batched.fit_mode = core::FitMode::kBatched;

  const FitOutputs golden = RunFit(hin, labeled, per_class, 1, false);
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExpectBitIdentical(golden, RunFit(hin, labeled, batched, threads, false));
  }
}

TEST(BatchedFitTest, WarmStartRefitIsBitIdentical) {
  ThreadCountGuard guard;
  const hin::Hin hin = MakeTestHin();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  core::TMarkConfig per_class;
  per_class.fit_mode = core::FitMode::kPerClass;
  core::TMarkConfig batched = per_class;
  batched.fit_mode = core::FitMode::kBatched;

  // Refit seeds every chain from the previous stationary panel; warm traces
  // are short (a handful of iterations), which exercises the early-retire
  // compaction path of the batched engine.
  const FitOutputs golden = RunFit(hin, labeled, per_class, 1, true);
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExpectBitIdentical(golden, RunFit(hin, labeled, batched, threads, true));
  }
}

// Class counts chosen to hit every micro-kernel tail shape: q=1 (pure scalar
// tail), 2, 3 (2+1), 5 (4+1), 7 (4+2+1), and 9 (one 8-block + scalar tail).
// The blocked SIMD panel kernels must stay bit-identical to the per-class
// engine at every width, including the odd ones.
TEST(BatchedFitTest, OddAndTailClassWidthsMatchPerClass) {
  ThreadCountGuard guard;
  for (const std::size_t q : {1u, 2u, 3u, 5u, 7u, 9u}) {
    SCOPED_TRACE("classes " + std::to_string(q));
    const hin::Hin hin = MakeHinWithClasses(q);
    const std::vector<std::size_t> labeled = EveryThird(hin);

    core::TMarkConfig per_class;
    per_class.fit_mode = core::FitMode::kPerClass;
    core::TMarkConfig batched = per_class;
    batched.fit_mode = core::FitMode::kBatched;

    const FitOutputs golden = RunFit(hin, labeled, per_class, 1, false);
    for (const int threads : {1, 4}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      ExpectBitIdentical(golden, RunFit(hin, labeled, batched, threads, false));
    }
  }
}

TEST(BatchedFitTest, IterationCappedUnconvergedRunsMatch) {
  ThreadCountGuard guard;
  const hin::Hin hin = MakeTestHin();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  // Cap the iterations so no class converges: every column survives to the
  // end of the panel loop and is written out by the post-loop path.
  core::TMarkConfig per_class;
  per_class.max_iterations = 4;
  per_class.epsilon = 1e-300;
  per_class.fit_mode = core::FitMode::kPerClass;
  core::TMarkConfig batched = per_class;
  batched.fit_mode = core::FitMode::kBatched;

  const FitOutputs golden = RunFit(hin, labeled, per_class, 1, false);
  for (const core::ConvergenceTrace& trace : golden.traces) {
    EXPECT_FALSE(trace.converged);
    EXPECT_EQ(trace.residuals.size(), 4u);
  }
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExpectBitIdentical(golden, RunFit(hin, labeled, batched, threads, false));
  }
}

}  // namespace
}  // namespace tmark
