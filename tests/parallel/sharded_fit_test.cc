// Bit-identity tests for the LLC-sharded merged-view dispatch: a fit run
// under any shard budget — pathologically tiny, the LLC-sized default, or
// one so large the plan collapses to a single shard — must equal the
// per-class engine bit for bit at every thread count, with sharding
// enabled, disabled, and with the compact index arrays forced wide. The
// shard plan shapes work assignment only; these tests pin that contract.

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "tmark/core/tmark.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/la/index_array.h"
#include "tmark/parallel/thread_pool.h"
#include "tmark/tensor/sharding.h"

namespace tmark {
namespace {

// Restores every global knob the tests touch, so a failing assertion cannot
// leak a tiny budget or a forced-wide build into later tests.
struct KnobGuard {
  ~KnobGuard() {
    parallel::SetNumThreads(0);
    tensor::SetMergedShardBudgetBytes(0);
    tensor::SetMergedShardingEnabled(true);
    la::SetForceWideIndexArrays(false);
  }
};

hin::Hin MakeTestHin() {
  datasets::SyntheticHinConfig config;
  config.num_nodes = 220;
  config.class_names = {"A", "B", "C", "D"};
  config.relations = {{"r0", 0.85, 0.0, 3.0, {}, false},
                      {"r1", 0.6, 0.2, 2.0, {}, true}};
  config.seed = 99;
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> EveryThird(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) labeled.push_back(i);
  return labeled;
}

struct FitOutputs {
  la::DenseMatrix confidences;
  la::DenseMatrix link_importance;
  std::vector<core::ConvergenceTrace> traces;
};

FitOutputs RunFit(const hin::Hin& hin, const std::vector<std::size_t>& labeled,
                  const core::TMarkConfig& config, int threads) {
  parallel::SetNumThreads(threads);
  core::TMarkClassifier clf(config);
  clf.Fit(hin, labeled);
  return {clf.Confidences(), clf.LinkImportance(), clf.Traces()};
}

void ExpectBitIdentical(const FitOutputs& golden, const FitOutputs& other) {
  EXPECT_DOUBLE_EQ(golden.confidences.MaxAbsDiff(other.confidences), 0.0);
  EXPECT_DOUBLE_EQ(golden.link_importance.MaxAbsDiff(other.link_importance),
                   0.0);
  ASSERT_EQ(golden.traces.size(), other.traces.size());
  for (std::size_t c = 0; c < golden.traces.size(); ++c) {
    const core::ConvergenceTrace& g = golden.traces[c];
    const core::ConvergenceTrace& o = other.traces[c];
    EXPECT_EQ(g.converged, o.converged);
    ASSERT_EQ(g.residuals.size(), o.residuals.size()) << "class " << c;
    for (std::size_t t = 0; t < g.residuals.size(); ++t) {
      EXPECT_EQ(g.residuals[t], o.residuals[t])  // exact, not approximate
          << "class " << c << " iteration " << t;
    }
  }
}

TEST(ShardedFitTest, BitIdenticalAcrossShardBudgetsAndThreadCounts) {
  KnobGuard guard;
  const hin::Hin hin = MakeTestHin();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  core::TMarkConfig per_class;
  per_class.fit_mode = core::FitMode::kPerClass;
  core::TMarkConfig batched = per_class;
  batched.fit_mode = core::FitMode::kBatched;

  // Golden: per-class engine, serial, default sharding config.
  const FitOutputs golden = RunFit(hin, labeled, per_class, 1);

  // 1 byte forces one shard per row (clamped by kMaxMergedShards); the
  // default budget puts this whole test graph in one LLC block; SIZE_MAX
  // collapses the plan to a single shard outright.
  const std::size_t budgets[] = {1, tensor::kDefaultMergedShardBudgetBytes,
                                 std::numeric_limits<std::size_t>::max()};
  for (const std::size_t budget : budgets) {
    SCOPED_TRACE("budget " + std::to_string(budget));
    tensor::SetMergedShardBudgetBytes(budget);
    for (const int threads : {1, 4}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      ExpectBitIdentical(golden, RunFit(hin, labeled, batched, threads));
    }
  }
}

TEST(ShardedFitTest, DisabledShardingMatchesEnabled) {
  KnobGuard guard;
  const hin::Hin hin = MakeTestHin();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  core::TMarkConfig batched;
  batched.fit_mode = core::FitMode::kBatched;

  tensor::SetMergedShardingEnabled(true);
  tensor::SetMergedShardBudgetBytes(1);  // Maximal shard count.
  const FitOutputs sharded = RunFit(hin, labeled, batched, 4);

  tensor::SetMergedShardingEnabled(false);
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExpectBitIdentical(sharded, RunFit(hin, labeled, batched, threads));
  }
}

TEST(ShardedFitTest, ForcedWideIndexArraysAreBitIdentical) {
  KnobGuard guard;
  const hin::Hin hin = MakeTestHin();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  core::TMarkConfig batched;
  batched.fit_mode = core::FitMode::kBatched;

  const FitOutputs compact = RunFit(hin, labeled, batched, 1);
  la::SetForceWideIndexArrays(true);
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExpectBitIdentical(compact, RunFit(hin, labeled, batched, threads));
  }
}

}  // namespace
}  // namespace tmark
