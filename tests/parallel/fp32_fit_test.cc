// Error-bound tests for the opt-in fp32 panel-storage mode
// (TMarkConfig::fp32_panels). The mode deliberately gives up bit-identity:
// the x panel is demoted to float before each tensor product, so every
// gathered element carries a relative error of at most 2^-24 while all
// accumulation stays double. These tests pin the resulting end-to-end
// deviation from the fp64 batched engine to a small explicit bound on the
// DBLP preset, and check the knob changes nothing it should not touch
// (per-class engine, rankings, determinism across thread counts).

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "tmark/core/tmark.h"
#include "tmark/datasets/presets.h"
#include "tmark/parallel/thread_pool.h"

namespace tmark {
namespace {

// End-to-end tolerance on stationary confidences/importances. One demotion
// is a 2^-24 (~6e-8) relative error on values <= 1; the fixed-point
// iteration is a contraction (Theorems 1-3), so the stationary deviation is
// the per-iteration injection amplified by 1/(1 - rate) — comfortably under
// 1e-5 for the preset's alpha = 0.8. A bound this tight would fail
// immediately if fp32 storage leaked into the accumulators (float
// accumulation on DBLP-sized rows loses ~1e-3).
constexpr double kFp32Bound = 1e-5;

struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::SetNumThreads(0); }
};

hin::Hin MakeDblp() {
  datasets::PresetOptions options;
  options.num_nodes = 400;
  options.seed = 7;
  auto hin = datasets::MakePreset("dblp", options);
  EXPECT_TRUE(hin.ok()) << hin.status().ToString();
  return *std::move(hin);
}

std::vector<std::size_t> EveryThird(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) labeled.push_back(i);
  return labeled;
}

TEST(Fp32FitTest, BatchedFp32StaysWithinErrorBoundOfFp64) {
  ThreadCountGuard guard;
  const hin::Hin hin = MakeDblp();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  core::TMarkConfig fp64;
  fp64.fit_mode = core::FitMode::kBatched;
  core::TMarkConfig fp32 = fp64;
  fp32.fp32_panels = true;

  parallel::SetNumThreads(1);
  core::TMarkClassifier golden(fp64);
  golden.Fit(hin, labeled);

  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    parallel::SetNumThreads(threads);
    core::TMarkClassifier clf(fp32);
    clf.Fit(hin, labeled);
    EXPECT_LE(golden.Confidences().MaxAbsDiff(clf.Confidences()), kFp32Bound);
    EXPECT_LE(golden.LinkImportance().MaxAbsDiff(clf.LinkImportance()),
              kFp32Bound);
    // A deviation this small must not reorder the link-importance ranking.
    for (std::size_t c = 0; c < hin.num_classes(); ++c) {
      EXPECT_EQ(golden.RankRelationsForClass(c), clf.RankRelationsForClass(c))
          << "class " << c;
    }
  }
}

TEST(Fp32FitTest, Fp32IsDeterministicAcrossThreadCounts) {
  ThreadCountGuard guard;
  const hin::Hin hin = MakeDblp();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  core::TMarkConfig fp32;
  fp32.fit_mode = core::FitMode::kBatched;
  fp32.fp32_panels = true;

  // fp32 trades identity with the fp64 path, not determinism: the demoted
  // panel and the accumulation grouping are both thread-count-invariant.
  parallel::SetNumThreads(1);
  core::TMarkClassifier serial(fp32);
  serial.Fit(hin, labeled);
  parallel::SetNumThreads(4);
  core::TMarkClassifier threaded(fp32);
  threaded.Fit(hin, labeled);
  EXPECT_DOUBLE_EQ(
      serial.Confidences().MaxAbsDiff(threaded.Confidences()), 0.0);
  EXPECT_DOUBLE_EQ(
      serial.LinkImportance().MaxAbsDiff(threaded.LinkImportance()), 0.0);
}

TEST(Fp32FitTest, PerClassEngineIgnoresTheKnob) {
  ThreadCountGuard guard;
  const hin::Hin hin = MakeDblp();
  const std::vector<std::size_t> labeled = EveryThird(hin);

  core::TMarkConfig plain;
  plain.fit_mode = core::FitMode::kPerClass;
  core::TMarkConfig with_knob = plain;
  with_knob.fp32_panels = true;

  parallel::SetNumThreads(1);
  core::TMarkClassifier a(plain);
  a.Fit(hin, labeled);
  core::TMarkClassifier b(with_knob);
  b.Fit(hin, labeled);
  EXPECT_DOUBLE_EQ(a.Confidences().MaxAbsDiff(b.Confidences()), 0.0);
  EXPECT_DOUBLE_EQ(a.LinkImportance().MaxAbsDiff(b.LinkImportance()), 0.0);
}

}  // namespace
}  // namespace tmark
