#include "tmark/common/check.h"

#include <string>

#include <gtest/gtest.h>

namespace tmark {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(TMARK_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(TMARK_CHECK_MSG(true, "never shown"));
}

TEST(CheckTest, FailingCheckThrowsCheckError) {
  EXPECT_THROW(TMARK_CHECK(false), CheckError);
}

TEST(CheckTest, MessageIncludesExpressionAndLocation) {
  try {
    TMARK_CHECK(2 > 3);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("check_test.cc"), std::string::npos);
  }
}

TEST(CheckTest, MessageIncludesStreamedDetail) {
  try {
    TMARK_CHECK_MSG(false, "index " << 42 << " out of range");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("index 42 out of range"),
              std::string::npos);
  }
}

TEST(CheckTest, CheckErrorIsLogicError) {
  EXPECT_THROW(TMARK_CHECK(false), std::logic_error);
}

}  // namespace
}  // namespace tmark
