#include "tmark/common/string_util.h"

#include <gtest/gtest.h>

namespace tmark {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, PreservesEmptyFields) {
  const auto parts = Split(",a,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(SplitTest, NoSeparatorYieldsWhole) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StripTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Strip("  hi there \t\n"), "hi there");
  EXPECT_EQ(Strip(""), "");
  EXPECT_EQ(Strip("   "), "");
  EXPECT_EQ(Strip("x"), "x");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("edge 1 2", "edge"));
  EXPECT_FALSE(StartsWith("edg", "edge"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(0.92857, 3), "0.929");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace tmark
