#include "tmark/common/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tmark/common/check.h"

namespace tmark {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RngTest, UniformIntZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformInt(0), CheckError);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PoissonMeanSmallRegime) {
  Rng rng(31);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(4.5);
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(RngTest, PoissonMeanLargeRegime) {
  Rng rng(37);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(60.0);
  EXPECT_NEAR(sum / n, 60.0, 0.5);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(41);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(RngTest, CategoricalRejectsInvalidWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.Categorical({}), CheckError);
  EXPECT_THROW(rng.Categorical({0.0, 0.0}), CheckError);
  EXPECT_THROW(rng.Categorical({1.0, -0.5}), CheckError);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(53);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleTooManyThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), CheckError);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(59);
  Rng child = parent.Fork();
  // The child stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace tmark
