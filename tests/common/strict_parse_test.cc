#include "tmark/common/strict_parse.h"

#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace tmark {
namespace {

TEST(ParseIndexTest, AcceptsPlainDigits) {
  EXPECT_EQ(ParseIndex("0").value(), 0u);
  EXPECT_EQ(ParseIndex("42").value(), 42u);
  EXPECT_EQ(ParseIndex("007").value(), 7u);
}

TEST(ParseIndexTest, RejectsEverythingElse) {
  for (const char* token :
       {"", "-1", "+1", " 1", "1 ", "1abc", "abc", "0x10", "1e3", "3.0",
        "18446744073709551616",  // SIZE_MAX + 1
        "99999999999999999999999999"}) {
    const Result<std::size_t> r = ParseIndex(token);
    EXPECT_FALSE(r.ok()) << "'" << token << "'";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << token;
  }
}

TEST(ParseIndexTest, ErrorNamesTheToken) {
  const Result<std::size_t> r = ParseIndex("1abc");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("1abc"), std::string::npos);
}

TEST(ParseBoundedIndexTest, EnforcesExclusiveBound) {
  EXPECT_EQ(ParseBoundedIndex("4", 5, "node").value(), 4u);
  const Result<std::size_t> r = ParseBoundedIndex("5", 5, "node");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("node"), std::string::npos);
}

TEST(ParseFiniteDoubleTest, AcceptsFixedAndScientific) {
  EXPECT_DOUBLE_EQ(ParseFiniteDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseFiniteDouble("-2").value(), -2.0);
  EXPECT_DOUBLE_EQ(ParseFiniteDouble("1e-3").value(), 1e-3);
  EXPECT_DOUBLE_EQ(ParseFiniteDouble("0").value(), 0.0);
  EXPECT_DOUBLE_EQ(ParseFiniteDouble(".5").value(), 0.5);
}

TEST(ParseFiniteDoubleTest, RejectsNonFiniteAndGarbage) {
  for (const char* token : {"", "nan", "NaN", "-nan", "inf", "-inf",
                            "infinity", "1e999", "-1e999", "1.5x", "x1.5",
                            " 1.5", "1.5 ", "--1", "0x1p3"}) {
    const Result<double> r = ParseFiniteDouble(token);
    EXPECT_FALSE(r.ok()) << "'" << token << "'";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << token;
  }
}

TEST(ParsePositiveFiniteDoubleTest, RequiresStrictlyPositive) {
  EXPECT_DOUBLE_EQ(ParsePositiveFiniteDouble("0.25").value(), 0.25);
  EXPECT_DOUBLE_EQ(ParsePositiveFiniteDouble("1e-300").value(), 1e-300);
  for (const char* token : {"0", "0.0", "-0.5", "-1e-300", "nan", "inf"}) {
    const Result<double> r = ParsePositiveFiniteDouble(token);
    EXPECT_FALSE(r.ok()) << "'" << token << "'";
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << token;
  }
}

TEST(StrictParseTest, LongHostileTokensAreClampedInMessages) {
  const std::string huge(500, '9');
  const Result<std::size_t> r = ParseIndex(huge);
  ASSERT_FALSE(r.ok());
  // The echoed token is clamped so hostile input can't balloon logs.
  EXPECT_LT(r.status().message().size(), 200u);
}

}  // namespace
}  // namespace tmark
