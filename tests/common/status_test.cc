#include "tmark/common/status.h"

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "tmark/common/check.h"

namespace tmark {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, Status::Ok());
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(ParseError("bad").code(), StatusCode::kParseError);
  EXPECT_EQ(InvalidArgumentError("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("bad").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("bad").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("bad").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("bad").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("bad").code(), StatusCode::kInternal);
  EXPECT_EQ(ParseError("bad edge").message(), "bad edge");
  EXPECT_FALSE(ParseError("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(ParseError("line 3: bad edge").ToString(),
            "PARSE_ERROR: line 3: bad edge");
  EXPECT_EQ(NotFoundError("no such file").ToString(),
            "NOT_FOUND: no such file");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "PARSE_ERROR");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusTest, MetricSuffixesAreStable) {
  EXPECT_EQ(StatusCodeMetricSuffix(StatusCode::kParseError), "parse_error");
  EXPECT_EQ(StatusCodeMetricSuffix(StatusCode::kNotFound), "not_found");
  EXPECT_EQ(StatusCodeMetricSuffix(StatusCode::kInvalidArgument),
            "invalid_argument");
  EXPECT_EQ(StatusCodeMetricSuffix(StatusCode::kResourceExhausted),
            "resource_exhausted");
}

TEST(StatusTest, WithContextPrependsOutermostFirst) {
  const Status status =
      ParseError("bad weight").WithContext("line 7").WithContext("net.hin");
  EXPECT_EQ(status.message(), "net.hin: line 7: bad weight");
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  // No-op on OK.
  EXPECT_TRUE(Status::Ok().WithContext("ignored").ok());
  EXPECT_TRUE(Status::Ok().WithContext("ignored").message().empty());
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad(ParseError("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
}

TEST(ResultTest, ValueOnErrorIsContractViolation) {
  Result<int> bad(ParseError("nope"));
  EXPECT_THROW(bad.value(), CheckError);
}

TEST(ResultTest, OkStatusCannotBecomeResult) {
  EXPECT_THROW(Result<int>(Status::Ok()), CheckError);
}

TEST(ResultTest, ValueOrThrowUnwrapsOrRaisesStatusError) {
  EXPECT_EQ(Result<std::string>(std::string("hi")).ValueOrThrow(), "hi");
  try {
    Result<int>(NotFoundError("missing")).ValueOrThrow();
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

TEST(ResultTest, MoveOnlyValuesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

Status FailAt(int stage) {
  TMARK_RETURN_IF_ERROR(stage == 1 ? ParseError("stage one") : Status::Ok());
  TMARK_RETURN_IF_ERROR(stage == 2 ? DataLossError("stage two")
                                   : Status::Ok());
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagatesFirstFailure) {
  EXPECT_TRUE(FailAt(0).ok());
  EXPECT_EQ(FailAt(1).code(), StatusCode::kParseError);
  EXPECT_EQ(FailAt(2).code(), StatusCode::kDataLoss);
}

Result<int> Doubled(Result<int> input) {
  TMARK_ASSIGN_OR_RETURN(const int v, std::move(input));
  return 2 * v;
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsOrPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  const Result<int> failed = Doubled(ParseError("no int"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace tmark
