#include <sstream>

#include <gtest/gtest.h>

#include "tmark/baselines/registry.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/nus.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/eval/experiment.h"
#include "tmark/hin/hin_io.h"

namespace tmark {
namespace {

/// Integration tests: several modules working together on realistic (but
/// scaled-down) versions of the paper's experiments. Kept small enough to
/// run in seconds; the full-size versions live in bench/.

TEST(EndToEndTest, PaperExampleThroughRegistry) {
  const hin::Hin hin = datasets::MakePaperExample();
  auto clf = baselines::MakeClassifier("T-Mark");
  clf->Fit(hin, datasets::PaperExampleLabeledNodes());
  const auto pred = clf->PredictSingleLabel();
  EXPECT_EQ(pred[2], 1u);
  EXPECT_EQ(pred[3], 0u);
}

TEST(EndToEndTest, TMarkBeatsContentOnlyBaselineOnDblp) {
  datasets::DblpOptions options;
  options.num_authors = 220;
  const hin::Hin hin = datasets::MakeDblp(options);
  Rng rng(5);
  const auto labeled = eval::StratifiedSplit(hin, 0.2, &rng);

  auto tmark = baselines::MakeClassifier("T-Mark");
  const double acc_tmark = eval::EvaluateClassifier(
      hin, tmark.get(), labeled, /*multi_label=*/false, 0.5);
  auto hn = baselines::MakeClassifier("HN");
  const double acc_hn = eval::EvaluateClassifier(
      hin, hn.get(), labeled, /*multi_label=*/false, 0.5);
  EXPECT_GT(acc_tmark, 0.75);
  EXPECT_GT(acc_tmark, acc_hn);
}

TEST(EndToEndTest, DblpLinkRankingFavorsHomeAreaConferences) {
  // Table 2's shape: each area's top-ranked conferences are its own.
  datasets::DblpOptions options;
  options.num_authors = 300;
  const hin::Hin hin = datasets::MakeDblp(options);
  Rng rng(7);
  const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
  core::TMarkClassifier clf;
  clf.Fit(hin, labeled);
  const auto area_confs = datasets::DblpAreaConferences();
  for (std::size_t area = 0; area < 4; ++area) {
    const auto ranking = clf.RankRelationsForClass(area);
    // At least 3 of the top-5 ranked conferences belong to the area.
    std::size_t hits = 0;
    for (std::size_t r = 0; r < 5; ++r) {
      const std::string& name = hin.relation_name(ranking[r]);
      for (const std::string& conf : area_confs[area]) {
        if (conf == name) {
          ++hits;
          break;
        }
      }
    }
    EXPECT_GE(hits, 3u) << "area " << hin.class_name(area);
  }
}

TEST(EndToEndTest, NusTagset1BeatsTagset2) {
  // The Sec. 6.3 link-selection result: relevant links -> high accuracy,
  // frequency-selected links -> stuck low.
  datasets::NusOptions options;
  options.num_images = 400;
  const hin::Hin relevant = datasets::MakeNus(options);
  options.tagset = datasets::NusTagset::kTagset2;
  const hin::Hin frequent = datasets::MakeNus(options);

  Rng rng(9);
  const auto labeled1 = eval::StratifiedSplit(relevant, 0.1, &rng);
  const auto labeled2 = eval::StratifiedSplit(frequent, 0.1, &rng);
  core::TMarkConfig config;
  config.alpha = 0.9;
  config.gamma = 0.4;
  core::TMarkClassifier clf1(config), clf2(config);
  const double acc1 = eval::EvaluateClassifier(relevant, &clf1, labeled1,
                                               false, 0.5);
  const double acc2 = eval::EvaluateClassifier(frequent, &clf2, labeled2,
                                               false, 0.5);
  EXPECT_GT(acc1, acc2 + 0.1);
  EXPECT_GT(acc1, 0.85);
}

TEST(EndToEndTest, SerializedHinGivesIdenticalPredictions) {
  datasets::DblpOptions options;
  options.num_authors = 120;
  const hin::Hin hin = datasets::MakeDblp(options);
  std::stringstream ss;
  hin::SaveHin(hin, ss);
  const hin::Hin back = hin::LoadHin(ss).value();

  Rng rng(11);
  const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
  core::TMarkClassifier a, b;
  a.Fit(hin, labeled);
  b.Fit(back, labeled);
  EXPECT_LT(a.Confidences().MaxAbsDiff(b.Confidences()), 1e-12);
}

TEST(EndToEndTest, AllMethodsCompleteOnTinyDblp) {
  datasets::DblpOptions options;
  options.num_authors = 90;
  const hin::Hin hin = datasets::MakeDblp(options);
  Rng rng(13);
  const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
  for (const std::string& name : baselines::PaperMethodNames()) {
    auto clf = baselines::MakeClassifier(name);
    const double acc =
        eval::EvaluateClassifier(hin, clf.get(), labeled, false, 0.5);
    EXPECT_GE(acc, 0.0) << name;
    EXPECT_LE(acc, 1.0) << name;
  }
}

}  // namespace
}  // namespace tmark
