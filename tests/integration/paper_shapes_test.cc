// Shape regression tests: scaled-down versions of the qualitative claims of
// the paper's evaluation section. The full-size reproductions live in
// bench/; these keep the claims from silently regressing during library
// work.

#include <gtest/gtest.h>

#include "tmark/baselines/registry.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/acm.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/movies.h"
#include "tmark/eval/experiment.h"

namespace tmark {
namespace {

double Score(const hin::Hin& hin, const std::string& method, double fraction,
             double alpha, bool multi_label, std::uint64_t seed) {
  Rng rng(seed);
  const auto labeled = eval::StratifiedSplit(hin, fraction, &rng);
  auto clf = baselines::MakeClassifier(method, alpha, 0.6);
  return eval::EvaluateClassifier(hin, clf.get(), labeled, multi_label, 0.5);
}

TEST(PaperShapesTest, MoviesEmrBeatsCollectiveBaselines) {
  // Table 4's inversion: EMR's link aggregation wins on the sparse-link
  // Movies regime, while T-Mark stays ahead of Hcc / wvRN+RL.
  datasets::MoviesOptions options;
  options.num_movies = 450;
  const hin::Hin hin = datasets::MakeMovies(options);
  const double emr = Score(hin, "EMR", 0.3, 0.9, false, 3);
  const double tmark = Score(hin, "T-Mark", 0.3, 0.9, false, 3);
  const double wvrn = Score(hin, "wvRN+RL", 0.3, 0.9, false, 3);
  EXPECT_GT(emr, tmark - 0.03);  // EMR at least matches T-Mark
  EXPECT_GT(tmark, wvrn);        // T-Mark still beats plain propagation
}

TEST(PaperShapesTest, MoviesAccuraciesStayLow) {
  // The paper's Movies numbers top out near 0.63 even with 90% labels —
  // genre labels are irreducibly ambiguous.
  datasets::MoviesOptions options;
  options.num_movies = 450;
  const hin::Hin hin = datasets::MakeMovies(options);
  const double tmark = Score(hin, "T-Mark", 0.7, 0.9, false, 5);
  EXPECT_LT(tmark, 0.85);
  EXPECT_GT(tmark, 0.35);
}

TEST(PaperShapesTest, AcmConceptAndConferenceLinksDominate) {
  // Fig. 5: concepts and conferences are the top-2 link types per class.
  // (Needs the bench-scale corpus; smaller samples are too noisy.)
  datasets::AcmOptions options;
  options.num_publications = 550;
  const hin::Hin hin = datasets::MakeAcm(options);
  Rng rng(7);
  const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
  core::TMarkConfig config;
  config.alpha = 0.9;
  core::TMarkClassifier clf(config);
  clf.Fit(hin, labeled);
  std::size_t dominated = 0;
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    const auto ranking = clf.RankRelationsForClass(c);
    const bool top2_are_concept_conf =
        (ranking[0] == 1 || ranking[0] == 2) &&
        (ranking[1] == 1 || ranking[1] == 2);
    if (top2_are_concept_conf) ++dominated;
  }
  EXPECT_GE(dominated, hin.num_classes() - 2);
}

TEST(PaperShapesTest, AcmTMarkLeadsAtLowLabelRates) {
  // Table 11: at 10% labels T-Mark's macro-F1 is far above the
  // classifier-based baselines.
  datasets::AcmOptions options;
  options.num_publications = 350;
  const hin::Hin hin = datasets::MakeAcm(options);
  const double tmark = Score(hin, "T-Mark", 0.1, 0.9, true, 11);
  const double hcc = Score(hin, "Hcc", 0.1, 0.9, true, 11);
  const double emr = Score(hin, "EMR", 0.1, 0.9, true, 11);
  EXPECT_GT(tmark, hcc + 0.1);
  EXPECT_GT(tmark, emr + 0.1);
}

TEST(PaperShapesTest, GammaMixBeatsExtremesOnDblp) {
  // Fig. 8's qualitative claim on DBLP: the relation/feature mix beats
  // either source alone, and features alone are clearly worst.
  datasets::DblpOptions options;
  options.num_authors = 400;
  const hin::Hin hin = datasets::MakeDblp(options);
  Rng rng(9);
  const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
  auto run = [&](double gamma) {
    core::TMarkConfig config;
    config.alpha = 0.8;
    config.gamma = gamma;
    core::TMarkClassifier clf(config);
    return eval::EvaluateClassifier(hin, &clf, labeled, false, 0.5);
  };
  const double relations_only = run(0.0);
  const double mixed = run(0.6);
  const double features_only = run(1.0);
  EXPECT_GE(mixed + 0.02, relations_only);
  EXPECT_GT(mixed, features_only + 0.05);
}

}  // namespace
}  // namespace tmark
