// Weighted-HIN coverage: edge weights must flow through the tensor
// normalizations into classification — the paper's tensor is "nonnegative",
// not binary, and real corpora carry multiplicities (two authors sharing
// three papers).

#include <gtest/gtest.h>

#include "tmark/core/tmark.h"
#include "tmark/hin/hin_builder.h"
#include "tmark/tensor/transition_tensors.h"

namespace tmark {
namespace {

/// Two labeled anchors (0 = A, 1 = B) and one contested node 2 connected to
/// both, with an adjustable weight toward each side.
hin::Hin ContestedHin(double weight_to_a, double weight_to_b) {
  hin::HinBuilder b(5, 2);
  b.AddClass("A");
  b.AddClass("B");
  const std::size_t k = b.AddRelation("r");
  b.AddUndirectedEdge(k, 0, 3);  // A-side companion
  b.AddUndirectedEdge(k, 1, 4);  // B-side companion
  b.AddUndirectedEdge(k, 2, 0, weight_to_a);
  b.AddUndirectedEdge(k, 2, 1, weight_to_b);
  b.AddFeature(0, 0, 1.0);
  b.AddFeature(3, 0, 1.0);
  b.AddFeature(1, 1, 1.0);
  b.AddFeature(4, 1, 1.0);
  b.AddFeature(2, 0, 1.0);
  b.AddFeature(2, 1, 1.0);  // contested node looks like both
  b.SetLabel(0, 0);
  b.SetLabel(1, 1);
  b.SetLabel(3, 0);
  b.SetLabel(4, 1);
  b.SetLabel(2, 0);  // ground truth irrelevant here
  return std::move(b).Build();
}

TEST(WeightedHinTest, HeavierEdgeWinsTheContestedNode) {
  const std::vector<std::size_t> labeled = {0, 1};
  core::TMarkConfig config;
  config.gamma = 0.0;  // isolate the link signal
  {
    core::TMarkClassifier clf(config);
    clf.Fit(ContestedHin(5.0, 1.0), labeled);
    EXPECT_EQ(clf.PredictSingleLabel()[2], 0u);  // pulled toward A
  }
  {
    core::TMarkClassifier clf(config);
    clf.Fit(ContestedHin(1.0, 5.0), labeled);
    EXPECT_EQ(clf.PredictSingleLabel()[2], 1u);  // pulled toward B
  }
}

TEST(WeightedHinTest, WeightsChangeTransitionProbabilities) {
  const hin::Hin hin = ContestedHin(3.0, 1.0);
  const tensor::TransitionTensors t =
      tensor::TransitionTensors::Build(hin.ToAdjacencyTensor());
  // Column j = 2 (walking out of the contested node): 3:1 split between the
  // anchors (nodes 0 and 1).
  EXPECT_DOUBLE_EQ(t.OEntry(0, 2, 0), 0.75);
  EXPECT_DOUBLE_EQ(t.OEntry(1, 2, 0), 0.25);
}

TEST(WeightedHinTest, DuplicateEdgesAccumulateLikeWeights) {
  // Adding the same unit edge three times equals one weight-3 edge.
  hin::HinBuilder b1(3, 1);
  b1.AddClass("A");
  const std::size_t k1 = b1.AddRelation("r");
  for (int rep = 0; rep < 3; ++rep) b1.AddDirectedEdge(k1, 0, 1);
  b1.AddDirectedEdge(k1, 2, 1);
  const hin::Hin three_edges = std::move(b1).Build();

  hin::HinBuilder b2(3, 1);
  b2.AddClass("A");
  const std::size_t k2 = b2.AddRelation("r");
  b2.AddDirectedEdge(k2, 0, 1, 3.0);
  b2.AddDirectedEdge(k2, 2, 1);
  const hin::Hin weighted = std::move(b2).Build();

  EXPECT_DOUBLE_EQ(three_edges.relation(0).ToDense().MaxAbsDiff(
                       weighted.relation(0).ToDense()),
                   0.0);
}

}  // namespace
}  // namespace tmark
